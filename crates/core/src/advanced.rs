//! The *advanced* behavioral refinement checker (§3: Fig. 2, Def. 3.3),
//! implemented as the simulation game of App. A (Fig. 6).
//!
//! Advanced refinement extends the simple notion with two mechanisms:
//!
//! 1. **Late UB** (`beh-failure`): the source may invoke UB *later* than the
//!    target, provided it can reach `⊥` without any acquire transition
//!    *under every environment oracle* (Def. 3.2). Universality over
//!    oracles is decided as a game in which the environment-controlled
//!    choices — atomic-read values, `choose` resolutions, and
//!    release-permission losses — are adversarial (the oracle's *progress*
//!    condition guarantees the thread is never stuck, and its
//!    *monotonicity* only weakens the adversary).
//! 2. **Commitment sets** (`beh-rel-write`): release transitions of the
//!    source may disagree with the target's written set and released
//!    memory, provided the disagreement (the commitment set `R`) is
//!    fulfilled — written by the source — before termination or the next
//!    acquire.
//!
//! The checker is *sound* for positive verdicts within its exploration
//! bounds: `holds == true` means the simulation of Fig. 6 was established
//! on the quantified configuration space. The paper's adequacy theorem
//! (Thm. 6.2) then transfers the result to contextual refinement in PS^na
//! (which this workspace *tests*, differentially — see `tests/adequacy.rs`).

use std::collections::{HashMap, HashSet};
use std::fmt;

use seqwm_lang::Program;

use crate::label::{LocSet, SeqLabel, SyncInfo, Valuation};
use crate::machine::{EnumDomain, Memory, SeqState};
use crate::refine::{domain_for, RefineConfig, RefineError};

/// Outcome of an advanced refinement check.
#[derive(Clone, Debug)]
pub struct AdvancedOutcome {
    /// `true` iff the simulation was established for every configuration.
    pub holds: bool,
    /// The initial configuration on which the simulation failed.
    pub failed_config: Option<FailedConfig>,
    /// Number of initial configurations checked.
    pub configs: usize,
}

/// An initial configuration `(P, F, M)` on which simulation failed.
#[derive(Clone, Debug)]
pub struct FailedConfig {
    /// Initial permission set.
    pub perm: LocSet,
    /// Initial written-locations set.
    pub written: LocSet,
    /// Initial memory.
    pub mem: Valuation,
}

impl fmt::Display for FailedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set = |s: &LocSet| {
            s.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "P={{{}}} F={{{}}} M={:?}",
            set(&self.perm),
            set(&self.written),
            self.mem
        )
    }
}

/// The goal of the universal-oracle reachability game.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GameGoal {
    /// Win only by reaching `⊥` (the `beh-failure` suffix).
    BottomOnly,
    /// Win by reaching `⊥` or by covering the remaining locations with
    /// `F ∪ ⋃ released F` (the `beh-partial` suffix).
    Fulfill(LocSet),
}

/// The memoized simulation checker.
pub struct AdvancedChecker {
    dom: EnumDomain,
    sim_memo: HashMap<(SeqState, SeqState, LocSet), bool>,
    sim_stack: HashSet<(SeqState, SeqState, LocSet)>,
    game_memo: HashMap<(SeqState, GameGoal), bool>,
    game_stack: HashSet<(SeqState, GameGoal)>,
    depth_budget: usize,
    fuel: u64,
    /// `sim`/`game` nodes visited, flushed to the process-wide
    /// [`seqwm_explore::counters::REFINE_FUEL_SPENT`] gauge on drop
    /// (one atomic add per checker, not per node).
    spent: u64,
    exhausted: bool,
}

impl Drop for AdvancedChecker {
    fn drop(&mut self) {
        seqwm_explore::counters::add(&seqwm_explore::counters::REFINE_FUEL_SPENT, self.spent);
    }
}

impl AdvancedChecker {
    /// Creates a checker over the given enumeration domain.
    pub fn new(dom: EnumDomain) -> Self {
        AdvancedChecker {
            dom,
            sim_memo: HashMap::new(),
            sim_stack: HashSet::new(),
            game_memo: HashMap::new(),
            game_stack: HashSet::new(),
            depth_budget: 4096,
            fuel: u64::MAX,
            spent: 0,
            exhausted: false,
        }
    }

    /// The enumeration domain in use.
    pub fn domain(&self) -> &EnumDomain {
        &self.dom
    }

    /// Caps the total `sim`/`game` node count across every `simulate` call
    /// on this checker. Deterministic, like the simple checker's
    /// [`RefineConfig::max_fuel`]; exhaustion is reported by
    /// [`AdvancedChecker::is_exhausted`], not by a (necessarily
    /// conservative) negative verdict alone.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// `true` iff a `simulate` call ran out of fuel; any negative verdict
    /// obtained since then is unreliable.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Runs the simulation game from a pair of initial states with an empty
    /// commitment set.
    pub fn simulate(&mut self, src: &SeqState, tgt: &SeqState) -> bool {
        self.sim(src, tgt, &LocSet::new(), self.depth_budget)
    }

    fn spend_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            self.exhausted = true;
            return false;
        }
        self.fuel -= 1;
        self.spent += 1;
        true
    }

    fn sim(&mut self, src: &SeqState, tgt: &SeqState, r: &LocSet, depth: usize) -> bool {
        if depth == 0 || !self.spend_fuel() {
            return false; // conservative: exploration bound exceeded
        }
        let key = (src.clone(), tgt.clone(), r.clone());
        if let Some(&v) = self.sim_memo.get(&key) {
            return v;
        }
        if self.sim_stack.contains(&key) {
            return true; // coinduction: simulation is a greatest fixpoint
        }
        self.sim_stack.insert(key.clone());
        let result = self.sim_inner(src, tgt, r, depth);
        self.sim_stack.remove(&key);
        self.sim_memo.insert(key, result);
        result
    }

    fn sim_inner(&mut self, src: &SeqState, tgt: &SeqState, r: &LocSet, depth: usize) -> bool {
        // Late-UB disjunct: the source reaches ⊥ without acquires under
        // every oracle — then any target behavior is matched (beh-failure).
        if self.game(src, &GameGoal::BottomOnly, depth) {
            return true;
        }
        if tgt.is_bottom() {
            return false;
        }
        // beh-partial conjunct: under every oracle, the source must be able
        // to cover F_tgt ∪ R by (future) writes, without acquires.
        let mut goal: LocSet = tgt.written.clone();
        goal.extend(r.iter().copied());
        if !self.game(src, &GameGoal::Fulfill(goal.clone()), depth) {
            return false;
        }
        // beh-terminal: when the target terminates, the source must
        // terminate (after unlabeled steps) with a matching value, a larger
        // written set covering R, and a refined memory.
        if let Some(vt) = tgt.returned() {
            let footprint: LocSet = self.dom.na_locs.iter().copied().collect();
            return src.unlabeled_path(&self.dom).iter().any(|s| {
                s.returned().is_some_and(|vs| vt.refines(vs))
                    && goal.is_subset(&s.written)
                    && tgt.mem.refines_on(&s.mem, &footprint)
            });
        }
        // Step-matching: every target transition must be simulated.
        for (label, tgt_next) in tgt.transitions(&self.dom) {
            let ok = match label {
                None => self.sim(src, &tgt_next, r, depth - 1),
                Some(l) => self.match_labeled(src, &l, &tgt_next, r, depth),
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Finds a source transition (after unlabeled steps) matching the
    /// target's labeled transition, with the commitment-set bookkeeping of
    /// Fig. 2 / Fig. 6.
    fn match_labeled(
        &mut self,
        src: &SeqState,
        l_tgt: &SeqLabel,
        tgt_next: &SeqState,
        r: &LocSet,
        depth: usize,
    ) -> bool {
        for s in src.unlabeled_path(&self.dom) {
            if s.is_bottom() {
                // Reaching ⊥ via unlabeled steps alone is a (trivial)
                // late-UB win, but `game(BottomOnly)` at the node already
                // covers it; nothing to match here.
                continue;
            }
            for (sl, src_next) in s.transitions(&self.dom) {
                let Some(sl) = sl else { continue };
                if let Some(r_next) = self.label_match(l_tgt, &sl, tgt_next, &src_next, r) {
                    if self.sim(&src_next, tgt_next, &r_next, depth - 1) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Checks whether a source label matches a target label for simulation
    /// purposes and, if so, returns the commitment set to continue with.
    fn label_match(
        &self,
        t: &SeqLabel,
        s: &SeqLabel,
        tgt_next: &SeqState,
        src_next: &SeqState,
        r: &LocSet,
    ) -> Option<LocSet> {
        use SeqLabel::*;
        match (t, s) {
            (Choose(a), Choose(b)) if a == b => Some(r.clone()),
            (ReadRlx(x, a), ReadRlx(y, b)) if x == y && a == b => Some(r.clone()),
            (WriteRlx(x, a), WriteRlx(y, b)) if x == y && a.refines(*b) => Some(r.clone()),
            (Syscall(a), Syscall(b)) if a.refines(*b) => Some(r.clone()),
            (
                AcqRead {
                    loc: x,
                    val: a,
                    info: it,
                },
                AcqRead {
                    loc: y,
                    val: b,
                    info: is,
                },
            ) if x == y && a == b => self.acq_match(it, is, r),
            (AcqFence { info: it }, AcqFence { info: is }) => self.acq_match(it, is, r),
            (
                RelWrite {
                    loc: x,
                    val: a,
                    info: it,
                },
                RelWrite {
                    loc: y,
                    val: b,
                    info: is,
                },
            ) if x == y && a.refines(*b) => self.rel_match(it, is, tgt_next, src_next, r),
            (RelFence { info: it }, RelFence { info: is }) => {
                self.rel_match(it, is, tgt_next, src_next, r)
            }
            (
                Rmw {
                    loc: x,
                    mode: mt,
                    read: rt,
                    write: wt,
                    acq: at,
                    rel: lt,
                },
                Rmw {
                    loc: y,
                    mode: ms,
                    read: rs,
                    write: ws,
                    acq: asrc,
                    rel: lsrc,
                },
            ) if x == y && mt == ms && rt == rs => {
                let write_ok = match (wt, ws) {
                    (None, None) => true,
                    (Some(a), Some(b)) => a.refines(*b),
                    _ => false,
                };
                if !write_ok {
                    return None;
                }
                let r_mid = match (at, asrc) {
                    (None, None) => r.clone(),
                    (Some(it), Some(is)) => self.acq_match(it, is, r)?,
                    _ => return None,
                };
                match (lt, lsrc) {
                    (None, None) => Some(r_mid),
                    (Some(it), Some(is)) => self.rel_match(it, is, tgt_next, src_next, &r_mid),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Acquire matching: identical environment choices, `F_tgt ∪ R ⊆ F_src`,
    /// and the commitment set resets to `∅` (commitments must be fulfilled
    /// *before* an acquire).
    fn acq_match(&self, it: &SyncInfo, is: &SyncInfo, r: &LocSet) -> Option<LocSet> {
        if it.p_before != is.p_before || it.p_after != is.p_after || it.vals != is.vals {
            return None;
        }
        let mut need = it.written.clone();
        need.extend(r.iter().copied());
        need.is_subset(&is.written).then(LocSet::new)
    }

    /// Release matching: identical permission choice; the new commitment
    /// set `R′` collects (i) commitments not yet fulfilled, (ii) locations
    /// written by the target but not the source, and (iii) locations whose
    /// released memory disagrees (Fig. 2, `beh-rel-write`).
    fn rel_match(
        &self,
        it: &SyncInfo,
        is: &SyncInfo,
        tgt_next: &SeqState,
        src_next: &SeqState,
        r: &LocSet,
    ) -> Option<LocSet> {
        if it.p_before != is.p_before || it.p_after != is.p_after {
            return None;
        }
        let mut r_next: LocSet = r
            .iter()
            .chain(it.written.iter())
            .copied()
            .filter(|x| !is.written.contains(x))
            .collect();
        for &x in &self.dom.na_locs {
            if !tgt_next.mem.get(x).refines(src_next.mem.get(x)) {
                r_next.insert(x);
            }
        }
        Some(r_next)
    }

    /// The universal-oracle reachability game: can the source, for *every*
    /// oracle, reach the goal via a trace without acquire transitions?
    ///
    /// Adversarial (oracle-constrained) branches — atomic-read values,
    /// `choose` values, release permission losses — are conjunctive; the
    /// run is otherwise deterministic. System calls are conservatively
    /// losing (they would add observable events not present in the target).
    fn game(&mut self, state: &SeqState, goal: &GameGoal, depth: usize) -> bool {
        if depth == 0 || !self.spend_fuel() {
            return false;
        }
        if state.is_bottom() {
            return true;
        }
        if let GameGoal::Fulfill(remaining) = goal {
            if remaining.is_subset(&state.written) {
                return true;
            }
        }
        let key = (state.clone(), goal.clone());
        if let Some(&v) = self.game_memo.get(&key) {
            return v;
        }
        if self.game_stack.contains(&key) {
            return false; // least fixpoint: cycles do not reach the goal
        }
        self.game_stack.insert(key.clone());
        let result = self.game_inner(state, goal, depth);
        self.game_stack.remove(&key);
        self.game_memo.insert(key, result);
        result
    }

    fn game_inner(&mut self, state: &SeqState, goal: &GameGoal, depth: usize) -> bool {
        let trans = state.transitions(&self.dom);
        if trans.is_empty() {
            // Terminated without reaching the goal.
            return false;
        }
        for (label, next) in trans {
            match &label {
                Some(l) if l.is_acquire() => return false,
                Some(SeqLabel::Syscall(_)) => return false,
                _ => {}
            }
            // On releases, the released written-set keeps counting toward
            // the goal (beh-partial sums F over release labels).
            let next_goal = match (&label, goal) {
                (Some(l), GameGoal::Fulfill(remaining)) => match l.release_written() {
                    Some(released) => GameGoal::Fulfill(
                        remaining
                            .iter()
                            .copied()
                            .filter(|x| !released.contains(x))
                            .collect(),
                    ),
                    None => goal.clone(),
                },
                _ => goal.clone(),
            };
            if !self.game(&next, &next_goal, depth - 1) {
                return false;
            }
        }
        true
    }
}

/// Checks the advanced (weak) behavioral refinement `tgt ⊑_w src`
/// (Def. 3.3) between two whole programs, quantifying the initial
/// configuration as in [`crate::refine::refines_simple`].
///
/// # Errors
///
/// Fails with [`RefineError`] if the programs cannot be checked in SEQ.
pub fn refines_advanced(
    src: &Program,
    tgt: &Program,
    cfg: &RefineConfig,
) -> Result<AdvancedOutcome, RefineError> {
    let dom = domain_for(src, tgt, cfg)?;
    let mut checker = AdvancedChecker::new(dom.clone());
    if let Some(fuel) = cfg.max_fuel {
        checker.set_fuel(fuel);
    }
    let mut configs = 0;
    for perm in dom.loc_subsets() {
        for written in written_options(&dom, cfg) {
            for mem in dom.valuations(&dom.na_locs) {
                let memory = Memory::from_pairs(mem.iter().map(|(&l, &v)| (l, v)));
                let src_state = SeqState::new(src, perm.clone(), written.clone(), memory.clone());
                let tgt_state = SeqState::new(tgt, perm.clone(), written.clone(), memory);
                let holds = checker.simulate(&src_state, &tgt_state);
                if checker.is_exhausted() {
                    // A negative verdict after exhaustion is unreliable
                    // (fuel-starved branches return `false` conservatively).
                    return Err(RefineError::Truncated { configs });
                }
                configs += 1;
                if !holds {
                    return Ok(AdvancedOutcome {
                        holds: false,
                        failed_config: Some(FailedConfig { perm, written, mem }),
                        configs,
                    });
                }
            }
        }
    }
    Ok(AdvancedOutcome {
        holds: true,
        failed_config: None,
        configs,
    })
}

fn written_options(dom: &EnumDomain, cfg: &RefineConfig) -> Vec<LocSet> {
    use crate::refine::WrittenQuant;
    match cfg.written_quant {
        WrittenQuant::Empty => vec![LocSet::new()],
        WrittenQuant::EmptyAndFull => {
            let full: LocSet = dom.na_locs.iter().copied().collect();
            if full.is_empty() {
                vec![LocSet::new()]
            } else {
                vec![LocSet::new(), full]
            }
        }
        WrittenQuant::AllSubsets => crate::machine::subsets(&dom.na_locs),
    }
}

/// Convenience wrapper asserting the verdict (used pervasively in tests).
///
/// # Panics
///
/// Panics if the check cannot run ([`RefineError`]).
pub fn check_advanced(src: &Program, tgt: &Program) -> AdvancedOutcome {
    refines_advanced(src, tgt, &RefineConfig::default()).expect("programs checkable in SEQ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[track_caller]
    fn assert_adv(src: &str, tgt: &str) {
        let out = check_advanced(&p(src), &p(tgt));
        assert!(
            out.holds,
            "expected advanced refinement, failed at {}",
            out.failed_config.unwrap()
        );
    }

    #[track_caller]
    fn assert_not_adv(src: &str, tgt: &str) {
        let out = check_advanced(&p(src), &p(tgt));
        assert!(!out.holds, "expected advanced refinement to fail");
    }

    #[test]
    fn identity() {
        let s = "store[na](advx, 1); a := load[na](advx); return a;";
        assert_adv(s, s);
    }

    #[test]
    fn late_ub_reorder_rlx_read_with_na_write() {
        // a := x_rlx ; y_na := v  {_w  y_na := v ; a := x_rlx  (§3 "Late UB")
        assert_adv(
            "a := load[rlx](lux); store[na](luy, 1);",
            "store[na](luy, 1); a := load[rlx](lux);",
        );
    }

    #[test]
    fn acq_read_before_na_write_still_forbidden() {
        // a := x_acq ; y_na := v  {̸_w  y_na := v ; a := x_acq (Example 2.9 (i))
        assert_not_adv(
            "a := load[acq](afx); store[na](afy, 1);",
            "store[na](afy, 1); a := load[acq](afx);",
        );
    }

    #[test]
    fn ub_reorder_with_read_dependency_rejected() {
        // a := x_rlx ; if a = 1 then abort  {̸_w  abort ; a := x_rlx
        // (the §3 "second reason" example: the source must not assume the
        // environment lets it read 1).
        assert_not_adv("a := load[rlx](urx); if (a == 1) { abort; }", "abort;");
    }

    #[test]
    fn roach_motel_release_write_then_na_write() {
        // x_rel := v ; y_na := v'  {_w  y_na := v' ; x_rel := v
        // (§3 "Writes across release", needs commitment sets).
        assert_adv(
            "store[rel](rmx, 1); store[na](rmy, 2);",
            "store[na](rmy, 2); store[rel](rmx, 1);",
        );
    }

    #[test]
    fn example_3_5_dse_across_release() {
        // x_na := v ; y_rel := vy ; x_na := v'  {_w  y_rel := vy ; x_na := v'
        assert_adv(
            "store[na](dsex, 1); store[rel](dsey, 5); store[na](dsex, 2);",
            "store[rel](dsey, 5); store[na](dsex, 2);",
        );
    }

    #[test]
    fn example_2_10_still_fails_in_advanced() {
        // Store introduction after a release is unsound even with
        // commitments (the target writes *more* than the source ever will).
        assert_not_adv(
            "store[na](a210x, 1); store[rel](a210y, 1);",
            "store[na](a210x, 1); store[rel](a210y, 1); store[na](a210x, 1);",
        );
    }
}
