//! SEQ transition labels and the refinement order on them (Def. 2.3).
//!
//! Non-atomic accesses leave *no* label (they are invisible in traces,
//! allowing the source and target to perform different sequences of
//! non-atomic accesses). Atomic accesses, `choose`, and system calls are
//! recorded; acquire and release transitions additionally record the
//! permission sets before/after, the written-locations set, and the
//! relevant memory fragment (`V`), which is what makes traces expressive
//! enough for an adequate refinement notion (§2).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use seqwm_lang::{Loc, RmwMode, Value};

/// A set of non-atomic locations (used for permission sets `P` and
/// written-locations sets `F`).
pub type LocSet = BTreeSet<Loc>;

/// A partial valuation `V : Loc^na ⇀ Val`.
pub type Valuation = BTreeMap<Loc, Value>;

/// The bookkeeping attached to acquire/release transitions:
/// `(P, P′, F, V)` of the labels `Racq(x,v,P,P′,F,V)` / `Wrel(x,v,P,P′,F,V)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SyncInfo {
    /// Permission set before the transition (`P`).
    pub p_before: LocSet,
    /// Permission set after the transition (`P′`).
    pub p_after: LocSet,
    /// Written-locations set at the transition (`F`).
    pub written: LocSet,
    /// For acquires: the new values of gained locations
    /// (`dom(V) = P′ ∖ P`). For releases: the released memory `M|_P`.
    pub vals: Valuation,
}

impl SyncInfo {
    /// Label refinement on the acquire flavour: everything equal except
    /// `F_tgt ⊆ F_src`.
    fn acq_refines(&self, src: &SyncInfo) -> bool {
        self.p_before == src.p_before
            && self.p_after == src.p_after
            && self.vals == src.vals
            && self.written.is_subset(&src.written)
    }

    /// Label refinement on the release flavour: permission sets equal,
    /// `F_tgt ⊆ F_src`, and `V_tgt ⊑ V_src` pointwise.
    fn rel_refines(&self, src: &SyncInfo) -> bool {
        self.p_before == src.p_before
            && self.p_after == src.p_after
            && self.written.is_subset(&src.written)
            && valuation_refines(&self.vals, &src.vals)
    }
}

/// Pointwise lifting of the value order `⊑` to partial valuations with the
/// same domain.
pub fn valuation_refines(tgt: &Valuation, src: &Valuation) -> bool {
    tgt.len() == src.len()
        && tgt
            .iter()
            .all(|(x, v)| src.get(x).is_some_and(|sv| v.refines(*sv)))
}

/// A SEQ transition label (trace symbol).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SeqLabel {
    /// `choose(v)`.
    Choose(Value),
    /// `Rrlx(x, v)`.
    ReadRlx(Loc, Value),
    /// `Wrlx(x, v)`.
    WriteRlx(Loc, Value),
    /// `Racq(x, v, P, P′, F, V)`.
    AcqRead {
        /// Location read.
        loc: Loc,
        /// Value read.
        val: Value,
        /// Permission bookkeeping.
        info: SyncInfo,
    },
    /// `Wrel(x, v, P, P′, F, V)`.
    RelWrite {
        /// Location written.
        loc: Loc,
        /// Value written.
        val: Value,
        /// Permission bookkeeping.
        info: SyncInfo,
    },
    /// Acquire fence (Coq-development extension): an acquire transition
    /// without a read.
    AcqFence {
        /// Permission bookkeeping.
        info: SyncInfo,
    },
    /// Release fence (Coq-development extension): a release transition
    /// without a write.
    RelFence {
        /// Permission bookkeeping.
        info: SyncInfo,
    },
    /// Atomic read-modify-write (Coq-development extension). Combines an
    /// acquire-read side (if the mode acquires) and a release-write side
    /// (if the mode releases and the update writes).
    Rmw {
        /// Location updated.
        loc: Loc,
        /// RMW mode.
        mode: RmwMode,
        /// Value read.
        read: Value,
        /// Value written (`None` for a failed CAS, which acts as a read).
        write: Option<Value>,
        /// Acquire-side bookkeeping (present iff the mode acquires).
        acq: Option<SyncInfo>,
        /// Release-side bookkeeping (present iff the mode releases and a
        /// write happened).
        rel: Option<SyncInfo>,
    },
    /// An observable system call (`print(v)`).
    Syscall(Value),
}

impl SeqLabel {
    /// Does this label have acquire semantics? Such labels are forbidden in
    /// the "late UB" and "commitment fulfilment" suffixes of advanced
    /// refinement (§3, Fig. 2 `beh-failure` / `beh-partial`).
    pub fn is_acquire(&self) -> bool {
        match self {
            SeqLabel::AcqRead { .. } | SeqLabel::AcqFence { .. } => true,
            SeqLabel::Rmw { acq, .. } => acq.is_some(),
            _ => false,
        }
    }

    /// The written-locations set recorded on a release transition, if any
    /// (used for the `⋃{F | Wrel(...,F,_) ∈ tr}` side condition of
    /// `beh-partial`).
    pub fn release_written(&self) -> Option<&LocSet> {
        match self {
            SeqLabel::RelWrite { info, .. } | SeqLabel::RelFence { info } => Some(&info.written),
            SeqLabel::Rmw {
                rel: Some(info), ..
            } => Some(&info.written),
            _ => None,
        }
    }

    /// The label refinement order `e_tgt ⊑ e_src` of Def. 2.3 (extended to
    /// fences, RMWs, and system calls in the natural way).
    pub fn refines(&self, src: &SeqLabel) -> bool {
        use SeqLabel::*;
        match (self, src) {
            (Choose(a), Choose(b)) => a == b,
            (ReadRlx(x, a), ReadRlx(y, b)) => x == y && a == b,
            // Wrlx(x, v_tgt) ⊑ Wrlx(x, v_src) iff v_tgt ⊑ v_src.
            (WriteRlx(x, a), WriteRlx(y, b)) => x == y && a.refines(*b),
            (
                AcqRead {
                    loc: x,
                    val: a,
                    info: it,
                },
                AcqRead {
                    loc: y,
                    val: b,
                    info: is,
                },
            ) => x == y && a == b && it.acq_refines(is),
            (
                RelWrite {
                    loc: x,
                    val: a,
                    info: it,
                },
                RelWrite {
                    loc: y,
                    val: b,
                    info: is,
                },
            ) => x == y && a.refines(*b) && it.rel_refines(is),
            (AcqFence { info: it }, AcqFence { info: is }) => it.acq_refines(is),
            (RelFence { info: it }, RelFence { info: is }) => it.rel_refines(is),
            (
                Rmw {
                    loc: x,
                    mode: mt,
                    read: rt,
                    write: wt,
                    acq: at,
                    rel: lt,
                },
                Rmw {
                    loc: y,
                    mode: ms,
                    read: rs,
                    write: ws,
                    acq: asrc,
                    rel: lsrc,
                },
            ) => {
                x == y
                    && mt == ms
                    && rt == rs
                    && match (wt, ws) {
                        (None, None) => true,
                        (Some(t), Some(s)) => t.refines(*s),
                        _ => false,
                    }
                    && match (at, asrc) {
                        (None, None) => true,
                        (Some(t), Some(s)) => t.acq_refines(s),
                        _ => false,
                    }
                    && match (lt, lsrc) {
                        (None, None) => true,
                        (Some(t), Some(s)) => t.rel_refines(s),
                        _ => false,
                    }
            }
            (Syscall(a), Syscall(b)) => a.refines(*b),
            _ => false,
        }
    }
}

impl fmt::Display for SeqLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn set(s: &LocSet) -> String {
            let inner = s
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!("{{{inner}}}")
        }
        fn val(v: &Valuation) -> String {
            let inner = v
                .iter()
                .map(|(l, x)| format!("{l}↦{x}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("[{inner}]")
        }
        match self {
            SeqLabel::Choose(v) => write!(f, "choose({v})"),
            SeqLabel::ReadRlx(x, v) => write!(f, "Rrlx({x},{v})"),
            SeqLabel::WriteRlx(x, v) => write!(f, "Wrlx({x},{v})"),
            SeqLabel::AcqRead { loc, val: v, info } => write!(
                f,
                "Racq({loc},{v},{},{},{},{})",
                set(&info.p_before),
                set(&info.p_after),
                set(&info.written),
                val(&info.vals)
            ),
            SeqLabel::RelWrite { loc, val: v, info } => write!(
                f,
                "Wrel({loc},{v},{},{},{},{})",
                set(&info.p_before),
                set(&info.p_after),
                set(&info.written),
                val(&info.vals)
            ),
            SeqLabel::AcqFence { info } => write!(
                f,
                "Facq({},{},{})",
                set(&info.p_before),
                set(&info.p_after),
                set(&info.written)
            ),
            SeqLabel::RelFence { info } => write!(
                f,
                "Frel({},{},{})",
                set(&info.p_before),
                set(&info.p_after),
                set(&info.written)
            ),
            SeqLabel::Rmw {
                loc,
                mode,
                read,
                write,
                ..
            } => match write {
                Some(w) => write!(f, "U{mode}({loc},{read},{w})"),
                None => write!(f, "U{mode}({loc},{read},⊥w)"),
            },
            SeqLabel::Syscall(v) => write!(f, "sys({v})"),
        }
    }
}

/// The trace refinement order: equal length, pointwise label refinement
/// (Def. 2.3, item 2).
pub fn trace_refines(tgt: &[SeqLabel], src: &[SeqLabel]) -> bool {
    tgt.len() == src.len() && tgt.iter().zip(src).all(|(t, s)| t.refines(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::new("lbl_x")
    }

    fn info(written: &[Loc]) -> SyncInfo {
        SyncInfo {
            p_before: LocSet::new(),
            p_after: LocSet::new(),
            written: written.iter().copied().collect(),
            vals: Valuation::new(),
        }
    }

    #[test]
    fn reflexivity() {
        let labels = [
            SeqLabel::Choose(Value::Int(1)),
            SeqLabel::ReadRlx(x(), Value::Int(2)),
            SeqLabel::WriteRlx(x(), Value::Undef),
            SeqLabel::AcqRead {
                loc: x(),
                val: Value::Int(0),
                info: info(&[]),
            },
            SeqLabel::RelWrite {
                loc: x(),
                val: Value::Int(0),
                info: info(&[x()]),
            },
            SeqLabel::Syscall(Value::Int(3)),
        ];
        for l in &labels {
            assert!(l.refines(l), "label not reflexive: {l}");
        }
    }

    #[test]
    fn wrlx_value_refinement() {
        let t = SeqLabel::WriteRlx(x(), Value::Int(1));
        let s = SeqLabel::WriteRlx(x(), Value::Undef);
        assert!(t.refines(&s), "defined write refines undef write");
        assert!(!s.refines(&t), "undef write does not refine defined write");
    }

    #[test]
    fn rrlx_requires_equal_values() {
        let t = SeqLabel::ReadRlx(x(), Value::Int(1));
        let s = SeqLabel::ReadRlx(x(), Value::Undef);
        assert!(!t.refines(&s), "read labels must match exactly");
    }

    #[test]
    fn acquire_allows_larger_source_written_set() {
        let y = Loc::new("lbl_y");
        let t = SeqLabel::AcqRead {
            loc: x(),
            val: Value::Int(0),
            info: info(&[]),
        };
        let s = SeqLabel::AcqRead {
            loc: x(),
            val: Value::Int(0),
            info: info(&[y]),
        };
        assert!(t.refines(&s), "F_tgt ⊆ F_src is allowed");
        assert!(!s.refines(&t), "F_src ⊂ F_tgt is not");
    }

    #[test]
    fn release_value_map_refinement() {
        let y = Loc::new("lbl_relv");
        let mk = |v: Value| SeqLabel::RelWrite {
            loc: x(),
            val: Value::Int(0),
            info: SyncInfo {
                p_before: [y].into_iter().collect(),
                p_after: LocSet::new(),
                written: LocSet::new(),
                vals: [(y, v)].into_iter().collect(),
            },
        };
        assert!(mk(Value::Int(3)).refines(&mk(Value::Undef)));
        assert!(!mk(Value::Undef).refines(&mk(Value::Int(3))));
    }

    #[test]
    fn acquire_value_map_must_match_exactly() {
        let y = Loc::new("lbl_acqv");
        let mk = |v: Value| SeqLabel::AcqRead {
            loc: x(),
            val: Value::Int(0),
            info: SyncInfo {
                p_before: LocSet::new(),
                p_after: [y].into_iter().collect(),
                written: LocSet::new(),
                vals: [(y, v)].into_iter().collect(),
            },
        };
        assert!(!mk(Value::Int(3)).refines(&mk(Value::Undef)));
        assert!(mk(Value::Int(3)).refines(&mk(Value::Int(3))));
    }

    #[test]
    fn trace_refinement_is_pointwise_and_length_strict() {
        let t = vec![SeqLabel::WriteRlx(x(), Value::Int(1))];
        let s = vec![SeqLabel::WriteRlx(x(), Value::Undef)];
        assert!(trace_refines(&t, &s));
        assert!(!trace_refines(&t, &[]));
        assert!(!trace_refines(&[], &s));
        assert!(trace_refines(&[], &[]));
    }

    #[test]
    fn acquire_detection() {
        assert!(SeqLabel::AcqRead {
            loc: x(),
            val: Value::Int(0),
            info: info(&[]),
        }
        .is_acquire());
        assert!(SeqLabel::AcqFence { info: info(&[]) }.is_acquire());
        assert!(!SeqLabel::RelWrite {
            loc: x(),
            val: Value::Int(0),
            info: info(&[]),
        }
        .is_acquire());
        assert!(!SeqLabel::ReadRlx(x(), Value::Int(0)).is_acquire());
        assert!(SeqLabel::Rmw {
            loc: x(),
            mode: RmwMode::Acq,
            read: Value::Int(0),
            write: Some(Value::Int(1)),
            acq: Some(info(&[])),
            rel: None,
        }
        .is_acquire());
    }

    #[test]
    fn release_written_extraction() {
        let y = Loc::new("lbl_relw");
        let l = SeqLabel::RelWrite {
            loc: x(),
            val: Value::Int(0),
            info: info(&[y]),
        };
        assert_eq!(
            l.release_written().cloned(),
            Some([y].into_iter().collect::<LocSet>())
        );
        assert_eq!(SeqLabel::Choose(Value::Int(0)).release_written(), None);
    }

    #[test]
    fn syscall_refinement_uses_value_order() {
        assert!(SeqLabel::Syscall(Value::Int(1)).refines(&SeqLabel::Syscall(Value::Undef)));
        assert!(!SeqLabel::Syscall(Value::Undef).refines(&SeqLabel::Syscall(Value::Int(1))));
    }
}
