#![warn(missing_docs)]

//! # seqwm-seq
//!
//! The **sequential permission machine SEQ** of *Sequential Reasoning for
//! Optimizing Compilers under Weak Memory Concurrency* (PLDI 2022) — the
//! paper's primary contribution — together with executable checkers for its
//! two refinement notions:
//!
//! * [`machine`] — SEQ states `⟨σ, P, F, M⟩` and the transition rules of
//!   Fig. 1 (plus the Coq-development extensions: fences and RMWs).
//! * [`label`] — transition labels and the label refinement order
//!   (Def. 2.3, item 1).
//! * [`behavior`] — behaviors `⟨tr, trm(v,F,M) | prt(F) | ⊥⟩` (Def. 2.1)
//!   and bounded-exhaustive behavior enumeration.
//! * [`refine`] — the **simple** behavioral refinement `⊑` (Def. 2.4),
//!   checked by behavior-set inclusion over all initial configurations
//!   drawn from a finite footprint/value domain.
//! * [`advanced`] — the **advanced** behavioral refinement `⊑_w`
//!   (Def. 3.3), checked as the simulation game of App. A (Fig. 6) with
//!   late UB and commitment sets.
//!
//! By the paper's adequacy theorem (Thm. 6.2), refinement in SEQ of a
//! deterministic source entails contextual refinement in the promising
//! semantics with non-atomics (PS^na, crate `seqwm-promising`) under any
//! concurrent context. This workspace cannot re-prove the theorem (the Coq
//! certification is the part of the artifact that is out of scope for a
//! Rust reproduction), but it *tests* it differentially — see
//! `tests/adequacy.rs` at the workspace root.
//!
//! ## Example: validating store-to-load forwarding (Example 1.1)
//!
//! ```
//! use seqwm_lang::parser::parse_program;
//! use seqwm_seq::refine::check_simple;
//!
//! let src = parse_program("store[na](x, 1); b := load[na](x); return b;")?;
//! let tgt = parse_program("store[na](x, 1); b := 1;        return b;")?;
//! assert!(check_simple(&src, &tgt).holds);
//! # Ok::<(), seqwm_lang::parser::ParseError>(())
//! ```

pub mod advanced;
pub mod behavior;
pub mod label;
pub mod machine;
pub mod oracle;
pub mod refine;
pub mod search;

pub use advanced::{check_advanced, refines_advanced, AdvancedChecker, AdvancedOutcome};
pub use behavior::{enumerate_behaviors, enumerate_behaviors_fuel, Behavior, BehaviorEnd};
pub use label::{LocSet, SeqLabel, SyncInfo, Valuation};
pub use machine::{EnumDomain, Memory, SeqState};
pub use oracle::{check_under_oracle, FreeOracle, NoGainOracle, Oracle, PinReadsOracle};
pub use refine::{
    check_simple, refines_advanced_or_simple_config, refines_advanced_or_simple_outcome,
    refines_simple, RefineCheckError, RefineConfig, RefineError, RefineOutcome,
};
pub use search::{explore_seq, seq_engine_config, SeqExploration, SeqSystem};
