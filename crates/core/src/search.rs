//! SEQ adapter for the `seqwm-explore` engine.
//!
//! [`SeqSystem`] presents the sequential permission machine as a
//! [`TransitionSystem`] with a single agent, so the engine's dedup,
//! budgets and statistics apply to SEQ state spaces too (its
//! interleaving reduction is vacuous here — there is nothing to
//! interleave). The explored behavior set is the set of *terminal*
//! behavior ends (`trm`/`⊥`) reachable within the depth budget; the
//! traces and partial behaviors of [`enumerate_behaviors`] are a
//! refinement-checking concern and are not reconstructed.
//!
//! [`enumerate_behaviors`]: crate::behavior::enumerate_behaviors

use std::collections::BTreeSet;

use seqwm_explore::{
    AgentGroup, ExploreConfig, ExploreError, ExploreStats, Target, Transition, TransitionSystem,
};

use crate::behavior::BehaviorEnd;
use crate::machine::{EnumDomain, SeqState};

/// A SEQ state space (initial state + enumeration domain) as an
/// engine-explorable transition system.
pub struct SeqSystem<'a> {
    init: &'a SeqState,
    dom: &'a EnumDomain,
}

impl<'a> SeqSystem<'a> {
    /// Wraps a SEQ initial state under an enumeration domain.
    pub fn new(init: &'a SeqState, dom: &'a EnumDomain) -> Self {
        SeqSystem { init, dom }
    }
}

impl TransitionSystem for SeqSystem<'_> {
    type State = SeqState;
    type Behavior = BehaviorEnd;

    fn initial_state(&self) -> SeqState {
        self.init.clone()
    }

    fn agent_groups(&self, st: &SeqState) -> Vec<AgentGroup<SeqState, BehaviorEnd>> {
        let succs = st.transitions(self.dom);
        if succs.is_empty() {
            return Vec::new();
        }
        let transitions = succs
            .into_iter()
            .map(|(_label, next)| Transition {
                target: Target::State(next),
                tags: Default::default(),
            })
            .collect();
        // A single sequential agent: the reduction flags are irrelevant
        // (sleep/ample sets only matter with ≥ 2 agents), so claim nothing.
        vec![AgentGroup {
            agent: 0,
            transitions,
            shared_pure: false,
            local: false,
            na_write: None,
            shared_read: None,
            atomic_write: None,
        }]
    }

    fn terminal_behavior(&self, st: &SeqState) -> Option<BehaviorEnd> {
        if st.is_bottom() {
            return Some(BehaviorEnd::Bottom);
        }
        st.returned().map(|val| BehaviorEnd::Term {
            val,
            written: st.written.clone(),
            mem: st.mem.restrict(&self.dom.na_locs.iter().copied().collect()),
        })
    }
}

/// An engine exploration of a SEQ state space: terminal behavior ends +
/// engine statistics.
#[derive(Clone, Debug)]
pub struct SeqExploration {
    /// Terminal behavior ends (`trm`/`⊥`) found within the budget.
    pub ends: BTreeSet<BehaviorEnd>,
    /// Engine statistics (states, dedup, workers, time).
    pub stats: ExploreStats,
}

/// Explores the SEQ state space of `init` under `dom` with the engine.
///
/// The engine depth budget defaults to `dom.max_steps` (overridable via
/// `ecfg`); hitting it sets `stats.truncated`, making the result an
/// under-approximation exactly like [`enumerate_behaviors`].
///
/// [`enumerate_behaviors`]: crate::behavior::enumerate_behaviors
pub fn explore_seq(init: &SeqState, dom: &EnumDomain, ecfg: &ExploreConfig) -> SeqExploration {
    let sys = SeqSystem::new(init, dom);
    let r = seqwm_explore::explore(&sys, ecfg);
    SeqExploration {
        ends: r.behaviors,
        stats: r.stats,
    }
}

/// Fallible variant of [`explore_seq`]: rejects misconfigurations (a
/// checkpoint/resume request under a non-frontier strategy, an empty
/// checkpoint path) with a structured [`ExploreError`] instead of
/// silently degrading. Use this from CLI paths where the user asked
/// for durability explicitly and deserves a diagnostic.
pub fn try_explore_seq(
    init: &SeqState,
    dom: &EnumDomain,
    ecfg: &ExploreConfig,
) -> Result<SeqExploration, ExploreError> {
    let sys = SeqSystem::new(init, dom);
    let r = seqwm_explore::try_explore(&sys, ecfg)?;
    Ok(SeqExploration {
        ends: r.behaviors,
        stats: r.stats,
    })
}

/// The engine configuration matching an [`EnumDomain`]'s step budget.
pub fn seq_engine_config(dom: &EnumDomain) -> ExploreConfig {
    ExploreConfig {
        max_depth: dom.max_steps,
        ..ExploreConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::enumerate_behaviors;
    use crate::machine::Memory;
    use seqwm_lang::parser::parse_program;
    use seqwm_lang::Loc;

    fn state(src: &str, perm: &[&str]) -> (SeqState, EnumDomain) {
        let p = parse_program(src).unwrap();
        let st = SeqState::new(
            &p,
            perm.iter().map(|l| Loc::new(l)).collect(),
            Default::default(),
            Memory::new(),
        );
        let mut dom = EnumDomain::for_program(&p);
        dom.max_steps = 32;
        (st, dom)
    }

    fn legacy_ends(init: &SeqState, dom: &EnumDomain) -> BTreeSet<BehaviorEnd> {
        enumerate_behaviors(init, dom)
            .into_iter()
            .filter(|b| !matches!(b.end, BehaviorEnd::Partial { .. }))
            .map(|b| b.end)
            .collect()
    }

    #[test]
    fn seq_engine_matches_enumeration_terminals() {
        let (init, dom) = state(
            "store[na](sq_x, 1); a := load[na](sq_x); return a;",
            &["sq_x"],
        );
        let e = explore_seq(&init, &dom, &seq_engine_config(&dom));
        assert!(!e.stats.truncated);
        assert_eq!(e.ends, legacy_ends(&init, &dom));
        assert!(e.ends.iter().any(|b| matches!(b, BehaviorEnd::Term { .. })));
    }

    #[test]
    fn seq_engine_sees_bottom_on_unpermitted_access() {
        // Accessing a non-atomic location without permission is ⊥.
        let (init, dom) = state("store[na](sq_y, 1); return 0;", &[]);
        let e = explore_seq(&init, &dom, &seq_engine_config(&dom));
        assert_eq!(e.ends, legacy_ends(&init, &dom));
        assert!(e.ends.contains(&BehaviorEnd::Bottom));
    }

    #[test]
    fn seq_engine_acquire_nondeterminism_dedups() {
        // An acquire fence gains arbitrary permissions/values from the
        // domain: many branches, shared suffixes — dedup must bite.
        let (init, dom) = state("fence[acq]; a := load[na](sq_z); return a;", &[]);
        let e = explore_seq(&init, &dom, &seq_engine_config(&dom));
        assert_eq!(e.ends, legacy_ends(&init, &dom));
        assert!(e.stats.dedup_hits > 0 || e.stats.states > 0);
    }
}
