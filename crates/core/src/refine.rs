//! The *simple* behavioral refinement checker (Def. 2.4).
//!
//! `σ_tgt ⊑ σ_src` holds iff for **every** initial permission set `P`,
//! written set `F`, and memory `M`, every behavior of
//! `⟨σ_tgt, P, F, M⟩` is matched (up to `⊑`, Def. 2.3) by a behavior of
//! `⟨σ_src, P, F, M⟩`.
//!
//! The checker quantifies `P`, `F`, `M` over the finite footprint/value
//! domain derived from the two programs (see [`EnumDomain::for_pair`]) and
//! enumerates behavior sets exhaustively within a step budget. A returned
//! counterexample is a concrete initial configuration plus an unmatched
//! target behavior — exactly the shape of the paper's `{̸` arguments
//! (e.g. Examples 2.5–2.12).

use std::fmt;

use seqwm_lang::{Loc, Program, Value};

use crate::behavior::{behaviors_refine, enumerate_behaviors_fuel, Behavior};
use crate::label::{LocSet, Valuation};
use crate::machine::{subsets, EnumDomain, Memory, SeqState};

/// How to quantify the initial written-locations set `F`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WrittenQuant {
    /// Only `F = ∅` (fast; sufficient for all corpus examples).
    Empty,
    /// `F ∈ {∅, Loc^na}` (default: catches reset-sensitivity cheaply).
    #[default]
    EmptyAndFull,
    /// All subsets (full Def. 2.4 quantification over the footprint).
    AllSubsets,
}

/// Configuration of the refinement checkers.
#[derive(Clone, Debug)]
pub struct RefineConfig {
    /// Step budget per execution path.
    pub max_steps: usize,
    /// Quantification of the initial `F`.
    pub written_quant: WrittenQuant,
    /// Extra integer values to add to the enumeration domain.
    pub extra_values: Vec<i64>,
    /// Global work budget (states explored) across *all* configurations of
    /// one check, or `None` for unbounded. `max_steps` bounds each path but
    /// not the path *count*, which is exponential in the number of atomic
    /// reads; this bounds the whole check deterministically. Exhaustion
    /// yields [`RefineError::Truncated`] rather than a verdict.
    pub max_fuel: Option<u64>,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_steps: 96,
            written_quant: WrittenQuant::default(),
            extra_values: Vec::new(),
            max_fuel: None,
        }
    }
}

/// Errors preventing a refinement check from running.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RefineError {
    /// A location is accessed both atomically and non-atomically; SEQ
    /// forbids such mixing (§2, "Concurrency constructs").
    MixedAtomicity(Loc),
    /// The global [`RefineConfig::max_fuel`] budget ran out before every
    /// configuration was decided. No verdict: refinement may or may not
    /// hold for the unexplored part.
    Truncated {
        /// Configurations fully decided before exhaustion.
        configs: usize,
    },
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::MixedAtomicity(x) => {
                write!(
                    f,
                    "location {x} is accessed both atomically and non-atomically"
                )
            }
            RefineError::Truncated { configs } => {
                write!(
                    f,
                    "refinement check truncated: fuel budget exhausted after \
                     {configs} fully-decided configuration(s)"
                )
            }
        }
    }
}

impl std::error::Error for RefineError {}

/// A refutation of refinement: an initial configuration and a target
/// behavior with no matching source behavior.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Initial permission set.
    pub perm: LocSet,
    /// Initial written-locations set.
    pub written: LocSet,
    /// Initial memory (restricted to the footprint).
    pub mem: Valuation,
    /// The unmatched target behavior.
    pub target_behavior: Behavior,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set = |s: &LocSet| {
            s.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mem = self
            .mem
            .iter()
            .map(|(x, v)| format!("{x}↦{v}"))
            .collect::<Vec<_>>()
            .join(",");
        write!(
            f,
            "P={{{}}} F={{{}}} M=[{mem}]: unmatched target behavior {}",
            set(&self.perm),
            set(&self.written),
            self.target_behavior,
        )
    }
}

/// The verdict of a refinement check.
#[derive(Clone, Debug)]
pub struct RefineOutcome {
    /// `true` iff refinement held for every checked configuration.
    pub holds: bool,
    /// A refutation, when `holds` is `false`.
    pub counterexample: Option<Counterexample>,
    /// Number of initial configurations `(P, F, M)` checked.
    pub configs: usize,
    /// Total number of target behaviors matched.
    pub behaviors: usize,
}

/// Builds the enumeration domain for a program pair under a config.
///
/// # Errors
///
/// Fails with [`RefineError::MixedAtomicity`] if either program mixes
/// atomic and non-atomic accesses to the same location.
pub fn domain_for(
    src: &Program,
    tgt: &Program,
    cfg: &RefineConfig,
) -> Result<EnumDomain, RefineError> {
    EnumDomain::check_no_mixing(src, tgt).map_err(RefineError::MixedAtomicity)?;
    let mut dom = EnumDomain::for_pair(src, tgt);
    for &v in &cfg.extra_values {
        if !dom.values.contains(&Value::Int(v)) {
            dom.values.push(Value::Int(v));
        }
        if !dom.choose_values.contains(&v) {
            dom.choose_values.push(v);
        }
    }
    dom.max_steps = cfg.max_steps;
    Ok(dom)
}

fn written_options(dom: &EnumDomain, quant: WrittenQuant) -> Vec<LocSet> {
    match quant {
        WrittenQuant::Empty => vec![LocSet::new()],
        WrittenQuant::EmptyAndFull => {
            let full: LocSet = dom.na_locs.iter().copied().collect();
            if full.is_empty() {
                vec![LocSet::new()]
            } else {
                vec![LocSet::new(), full]
            }
        }
        WrittenQuant::AllSubsets => subsets(&dom.na_locs),
    }
}

/// Checks the simple behavioral refinement `tgt ⊑ src` (Def. 2.4) between
/// two whole programs.
///
/// # Errors
///
/// Fails with [`RefineError`] if the programs cannot be checked in SEQ.
pub fn refines_simple(
    src: &Program,
    tgt: &Program,
    cfg: &RefineConfig,
) -> Result<RefineOutcome, RefineError> {
    let dom = domain_for(src, tgt, cfg)?;
    let mut fuel = cfg.max_fuel.unwrap_or(u64::MAX);
    let mut configs = 0;
    let mut behaviors = 0;
    for perm in dom.loc_subsets() {
        for written in written_options(&dom, cfg.written_quant) {
            for mem in dom.valuations(&dom.na_locs) {
                let memory = Memory::from_pairs(mem.iter().map(|(&l, &v)| (l, v)));
                let src_state = SeqState::new(src, perm.clone(), written.clone(), memory.clone());
                let tgt_state = SeqState::new(tgt, perm.clone(), written.clone(), memory);
                let src_behs = enumerate_behaviors_fuel(&src_state, &dom, &mut fuel)
                    .ok_or(RefineError::Truncated { configs })?;
                let tgt_behs = enumerate_behaviors_fuel(&tgt_state, &dom, &mut fuel)
                    .ok_or(RefineError::Truncated { configs })?;
                configs += 1;
                behaviors += tgt_behs.len();
                if let Err(unmatched) = behaviors_refine(&tgt_behs, &src_behs) {
                    return Ok(RefineOutcome {
                        holds: false,
                        counterexample: Some(Counterexample {
                            perm,
                            written,
                            mem,
                            target_behavior: unmatched,
                        }),
                        configs,
                        behaviors,
                    });
                }
            }
        }
    }
    Ok(RefineOutcome {
        holds: true,
        counterexample: None,
        configs,
        behaviors,
    })
}

/// Convenience wrapper asserting the verdict (used pervasively in tests).
///
/// # Panics
///
/// Panics if the check cannot run ([`RefineError`]).
pub fn check_simple(src: &Program, tgt: &Program) -> RefineOutcome {
    refines_simple(src, tgt, &RefineConfig::default()).expect("programs checkable in SEQ")
}

/// Why a combined simple-then-advanced check produced no positive verdict.
///
/// Separates *inconclusive* outcomes (the check could not run, or ran out
/// of budget) from a genuine *refutation* — callers that act on verdicts
/// (CI gates, fuzzing oracles) must not conflate the two.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RefineCheckError {
    /// The check could not be completed ([`RefineError`]): mixed atomicity
    /// or an exhausted fuel budget. Inconclusive, not a refutation.
    Inconclusive(RefineError),
    /// Neither the simple nor the advanced notion holds; the string carries
    /// the failing configuration for diagnostics.
    Refuted(String),
}

impl fmt::Display for RefineCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineCheckError::Inconclusive(e) => write!(f, "{e}"),
            RefineCheckError::Refuted(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RefineCheckError {}

/// Checks the simple refinement first (cheaper) and falls back to the
/// advanced one (strictly more permissive, Prop. 3.4). Returns `Ok(true)`
/// if the simple notion sufficed and `Ok(false)` if the advanced one was
/// needed.
///
/// A simple-checker fuel exhaustion still falls through to the advanced
/// checker (whose memoization often copes where raw enumeration cannot);
/// only the advanced verdict is authoritative for the error.
///
/// # Errors
///
/// [`RefineCheckError::Refuted`] when neither notion validates the pair;
/// [`RefineCheckError::Inconclusive`] when the check cannot run or runs
/// out of fuel.
pub fn refines_advanced_or_simple_outcome(
    src: &Program,
    tgt: &Program,
    cfg: &RefineConfig,
) -> Result<bool, RefineCheckError> {
    match refines_simple(src, tgt, cfg) {
        Err(e @ RefineError::MixedAtomicity(_)) => {
            return Err(RefineCheckError::Inconclusive(e));
        }
        Err(RefineError::Truncated { .. }) => {} // advanced may still decide
        Ok(out) if out.holds => return Ok(true),
        Ok(_) => {}
    }
    match crate::advanced::refines_advanced(src, tgt, cfg) {
        Err(e) => Err(RefineCheckError::Inconclusive(e)),
        Ok(out) if out.holds => Ok(false),
        Ok(out) => Err(RefineCheckError::Refuted(format!(
            "neither simple nor advanced refinement holds (advanced failed at {})",
            out.failed_config
                .map(|c| c.to_string())
                .unwrap_or_else(|| "<unknown>".to_owned())
        ))),
    }
}

/// String-typed wrapper around [`refines_advanced_or_simple_outcome`],
/// kept for callers that only report the diagnostic.
///
/// # Errors
///
/// Returns a human-readable diagnostic when neither notion validates the
/// pair or the check cannot run (see [`RefineCheckError`]).
pub fn refines_advanced_or_simple_config(
    src: &Program,
    tgt: &Program,
    cfg: &RefineConfig,
) -> Result<bool, String> {
    refines_advanced_or_simple_outcome(src, tgt, cfg).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[track_caller]
    fn assert_refines(src: &str, tgt: &str) {
        let out = check_simple(&p(src), &p(tgt));
        assert!(
            out.holds,
            "expected refinement to hold, counterexample: {}",
            out.counterexample.unwrap()
        );
    }

    #[track_caller]
    fn assert_not_refines(src: &str, tgt: &str) {
        let out = check_simple(&p(src), &p(tgt));
        assert!(!out.holds, "expected refinement to fail");
        assert!(out.counterexample.is_some());
    }

    #[test]
    fn identity_refines() {
        let s = "store[na](rfx, 1); a := load[na](rfx); return a;";
        assert_refines(s, s);
    }

    #[test]
    fn example_1_1_store_to_load_forwarding() {
        // x_na := v ; b := x_na  {  x_na := v ; b := v
        assert_refines(
            "store[na](slf_x, 1); b := load[na](slf_x); return b;",
            "store[na](slf_x, 1); b := 1; return b;",
        );
    }

    #[test]
    fn value_change_does_not_refine() {
        assert_not_refines("return 1;", "return 2;");
    }

    #[test]
    fn mixing_is_rejected() {
        let prog = p("store[na](mix_w, 1); a := load[rlx](mix_w);");
        assert_eq!(
            refines_simple(&prog, &prog, &RefineConfig::default()).unwrap_err(),
            RefineError::MixedAtomicity(Loc::new("mix_w"))
        );
    }

    #[test]
    fn unused_store_introduction_is_refuted() {
        // skip {̸ x_na := v — store introduction is unsound.
        assert_not_refines("skip;", "store[na](usi_x, 1);");
    }

    #[test]
    fn unused_load_introduction_is_validated() {
        // skip { a := x_na (Example 2.8) — needs a racy na read to not UB.
        assert_refines("skip;", "a := load[na](uli_x);");
    }

    #[test]
    fn fuel_exhaustion_is_truncated_not_a_verdict() {
        let s = p("a := load[acq](fuel_x); b := load[acq](fuel_y); return a;");
        let starved = RefineConfig {
            max_fuel: Some(5),
            ..RefineConfig::default()
        };
        match refines_simple(&s, &s, &starved) {
            Err(RefineError::Truncated { .. }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
        // The combined check stays inconclusive (the advanced checker is
        // equally starved), never refuted.
        assert!(matches!(
            refines_advanced_or_simple_outcome(&s, &s, &starved),
            Err(RefineCheckError::Inconclusive(
                RefineError::Truncated { .. }
            ))
        ));
        // With enough fuel the same pair is decided.
        let fed = RefineConfig {
            max_fuel: Some(1_000_000),
            ..RefineConfig::default()
        };
        assert_eq!(refines_advanced_or_simple_outcome(&s, &s, &fed), Ok(true));
    }

    #[test]
    fn refutation_is_distinguished_from_truncation() {
        let cfg = RefineConfig {
            max_fuel: Some(1_000_000),
            ..RefineConfig::default()
        };
        assert!(matches!(
            refines_advanced_or_simple_outcome(&p("return 1;"), &p("return 2;"), &cfg),
            Err(RefineCheckError::Refuted(_))
        ));
    }

    #[test]
    fn config_written_quantification() {
        let cfg = RefineConfig {
            written_quant: WrittenQuant::AllSubsets,
            ..RefineConfig::default()
        };
        let s = p("store[na](wq_x, 1);");
        let out = refines_simple(&s, &s, &cfg).unwrap();
        assert!(out.holds);
        // 1 loc: 2 perms × 2 written × |values| memories.
        assert!(out.configs >= 4);
    }
}
