//! Environment oracles (Def. 3.2) and the direct transcription of the
//! behavioral-refinement-up-to-a-commitment-set relation `⊑_R` (Fig. 2).
//!
//! The advanced refinement `⊑_w` (Def. 3.3) quantifies over *all* oracles;
//! [`crate::advanced`] decides that quantification as a game. This module
//! provides the complementary, literal artifacts:
//!
//! * [`StrippedLabel`] — the label stripping `|e|` of §3 (drop `F`
//!   everywhere, drop `V` on releases);
//! * the [`Oracle`] trait with concrete oracles (the free oracle,
//!   value-pinning oracles) satisfying *progress* and *monotonicity*;
//! * [`behavior_refines_advanced`] — Fig. 2's `⊑_R`, rule by rule;
//! * [`check_under_oracle`] — Def. 3.3 instantiated at one oracle, which
//!   is a *necessary* condition for `⊑_w` and a *refutation witness
//!   generator* when it fails.
//!
//! The test suites cross-validate the game-based checker against these
//! artifacts on the litmus corpus.

use seqwm_lang::{Loc, Value};

use crate::behavior::{enumerate_behaviors, Behavior, BehaviorEnd};
use crate::label::{valuation_refines, LocSet, SeqLabel, Valuation};
use crate::machine::{EnumDomain, SeqState};

/// A stripped transition label `|e|` (§3): written-locations sets are
/// dropped everywhere, and the released memory `V` is dropped on release
/// labels (but kept on acquires).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StrippedLabel {
    /// `choose(v)`.
    Choose(Value),
    /// `Rrlx(x, v)`.
    ReadRlx(Loc, Value),
    /// `Wrlx(x, v)`.
    WriteRlx(Loc, Value),
    /// `Racq(x, v, P, P′, V)`.
    AcqRead {
        /// Location read.
        loc: Loc,
        /// Value read.
        val: Value,
        /// Permissions before.
        p_before: LocSet,
        /// Permissions after.
        p_after: LocSet,
        /// Gained values.
        vals: Valuation,
    },
    /// `Wrel(x, v, P, P′)`.
    RelWrite {
        /// Location written.
        loc: Loc,
        /// Value written.
        val: Value,
        /// Permissions before.
        p_before: LocSet,
        /// Permissions after.
        p_after: LocSet,
    },
    /// Stripped acquire fence.
    AcqFence {
        /// Permissions before.
        p_before: LocSet,
        /// Permissions after.
        p_after: LocSet,
        /// Gained values.
        vals: Valuation,
    },
    /// Stripped release fence.
    RelFence {
        /// Permissions before.
        p_before: LocSet,
        /// Permissions after.
        p_after: LocSet,
    },
    /// Stripped RMW.
    Rmw {
        /// Location updated.
        loc: Loc,
        /// Value read.
        read: Value,
        /// Value written (if any).
        write: Option<Value>,
    },
    /// System call.
    Syscall(Value),
}

/// The label stripping `|e|`.
pub fn strip(e: &SeqLabel) -> StrippedLabel {
    match e {
        SeqLabel::Choose(v) => StrippedLabel::Choose(*v),
        SeqLabel::ReadRlx(x, v) => StrippedLabel::ReadRlx(*x, *v),
        SeqLabel::WriteRlx(x, v) => StrippedLabel::WriteRlx(*x, *v),
        SeqLabel::AcqRead { loc, val, info } => StrippedLabel::AcqRead {
            loc: *loc,
            val: *val,
            p_before: info.p_before.clone(),
            p_after: info.p_after.clone(),
            vals: info.vals.clone(),
        },
        SeqLabel::RelWrite { loc, val, info } => StrippedLabel::RelWrite {
            loc: *loc,
            val: *val,
            p_before: info.p_before.clone(),
            p_after: info.p_after.clone(),
        },
        SeqLabel::AcqFence { info } => StrippedLabel::AcqFence {
            p_before: info.p_before.clone(),
            p_after: info.p_after.clone(),
            vals: info.vals.clone(),
        },
        SeqLabel::RelFence { info } => StrippedLabel::RelFence {
            p_before: info.p_before.clone(),
            p_after: info.p_after.clone(),
        },
        SeqLabel::Rmw {
            loc, read, write, ..
        } => StrippedLabel::Rmw {
            loc: *loc,
            read: *read,
            write: *write,
        },
        SeqLabel::Syscall(v) => StrippedLabel::Syscall(*v),
    }
}

/// An environment oracle (Def. 3.2): an LTS over stripped labels.
///
/// Implementations must satisfy *progress* (every label class is enabled
/// with some instantiation in every state) and *monotonicity* (if `e ⊑ e′`
/// and `e` is allowed, so is `e′`). The provided oracles satisfy both.
pub trait Oracle {
    /// The oracle's state type.
    type State: Clone;

    /// The initial oracle state.
    fn init(&self) -> Self::State;

    /// Attempts to take a step labelled `e`; `None` means the oracle
    /// forbids it.
    fn step(&self, w: &Self::State, e: &StrippedLabel) -> Option<Self::State>;

    /// Is a whole trace allowed (`tr ∈ Tr(Ω)`)?
    fn allows_trace(&self, trace: &[SeqLabel]) -> bool {
        let mut w = self.init();
        for e in trace {
            match self.step(&w, &strip(e)) {
                Some(next) => w = next,
                None => return false,
            }
        }
        true
    }
}

/// The free oracle: allows everything. The weakest environment; checking
/// under it is equivalent to the plain (oracle-less) matching.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreeOracle;

impl Oracle for FreeOracle {
    type State = ();

    fn init(&self) {}

    fn step(&self, _w: &(), _e: &StrippedLabel) -> Option<()> {
        Some(())
    }
}

/// An oracle pinning the value of every atomic read (and `choose`) of a
/// given location to a fixed value: the canonical *adversarial* oracle of
/// §3's second late-UB example ("an oracle that forces the source to read
/// `x ≠ 1`").
///
/// Monotonicity holds because read labels are only related to themselves
/// by `⊑`; progress holds because some read value is always allowed and
/// writes/releases are unrestricted.
#[derive(Clone, Debug)]
pub struct PinReadsOracle {
    /// The location whose reads are pinned.
    pub loc: Loc,
    /// The only value reads of `loc` may return.
    pub value: Value,
    /// Also pin every `choose` to this value?
    pub pin_choose: bool,
}

impl Oracle for PinReadsOracle {
    type State = ();

    fn init(&self) {}

    fn step(&self, _w: &(), e: &StrippedLabel) -> Option<()> {
        let ok = match e {
            StrippedLabel::ReadRlx(x, v) => *x != self.loc || *v == self.value,
            StrippedLabel::AcqRead { loc, val, .. } => *loc != self.loc || *val == self.value,
            StrippedLabel::Rmw { loc, read, .. } => *loc != self.loc || *read == self.value,
            StrippedLabel::Choose(v) => !self.pin_choose || *v == self.value,
            _ => true,
        };
        ok.then_some(())
    }
}

/// An oracle that forbids *gaining* permission on a location (acquires may
/// fire, but `P′` must not add `loc`). Used to refute transformations that
/// rely on the environment handing over a permission.
#[derive(Clone, Debug)]
pub struct NoGainOracle {
    /// The location whose permission may never be gained.
    pub loc: Loc,
}

impl Oracle for NoGainOracle {
    type State = ();

    fn init(&self) {}

    fn step(&self, _w: &(), e: &StrippedLabel) -> Option<()> {
        let ok = match e {
            StrippedLabel::AcqRead {
                p_before, p_after, ..
            }
            | StrippedLabel::AcqFence {
                p_before, p_after, ..
            } => p_before.contains(&self.loc) || !p_after.contains(&self.loc),
            _ => true,
        };
        ok.then_some(())
    }
}

/// Fig. 2, rule by rule: `⟨tr_tgt, r_tgt⟩ ⊑_R ⟨tr_src, r_src⟩`.
///
/// `na_locs` is the footprint over which terminal memories are compared.
pub fn behavior_refines_advanced(
    tgt: &Behavior,
    src: &Behavior,
    r: &LocSet,
    na_locs: &LocSet,
) -> bool {
    refines_rec(&tgt.trace, &tgt.end, &src.trace, &src.end, r, na_locs)
}

fn refines_rec(
    tr_tgt: &[SeqLabel],
    r_tgt: &BehaviorEnd,
    tr_src: &[SeqLabel],
    r_src: &BehaviorEnd,
    r: &LocSet,
    na_locs: &LocSet,
) -> bool {
    match (tr_tgt, tr_src) {
        ([], []) => match (r_tgt, r_src) {
            // beh-failure with an empty remaining source trace.
            (_, BehaviorEnd::Bottom) => true,
            // beh-terminal.
            (
                BehaviorEnd::Term {
                    val: vt,
                    written: ft,
                    mem: mt,
                },
                BehaviorEnd::Term {
                    val: vs,
                    written: fs,
                    mem: ms,
                },
            ) => {
                vt.refines(*vs)
                    && ft.union(r).all(|x| fs.contains(x))
                    && na_locs.iter().all(|x| {
                        mt.get(x)
                            .copied()
                            .unwrap_or_default()
                            .refines(ms.get(x).copied().unwrap_or_default())
                    })
            }
            // beh-partial with an empty remaining source trace.
            (BehaviorEnd::Partial { written: ft }, BehaviorEnd::Partial { written: fs }) => {
                ft.union(r).all(|x| fs.contains(x))
            }
            _ => false,
        },
        ([], rest_src) => match r_src {
            // beh-failure: the source may continue toward ⊥ without
            // acquires.
            BehaviorEnd::Bottom => rest_src.iter().all(|e| !e.is_acquire()),
            // beh-partial: the source may continue (without acquires),
            // covering F_tgt ∪ R with F_src ∪ released F's.
            BehaviorEnd::Partial { written: fs } => match r_tgt {
                BehaviorEnd::Partial { written: ft } => {
                    rest_src.iter().all(|e| !e.is_acquire())
                        && ft.union(r).all(|x| {
                            fs.contains(x)
                                || rest_src
                                    .iter()
                                    .filter_map(|e| e.release_written())
                                    .any(|rel| rel.contains(x))
                        })
                }
                _ => false,
            },
            _ => false,
        },
        ([et, tr_tgt_rest @ ..], [es, tr_src_rest @ ..]) => {
            match (et, es) {
                // beh-rlx (also covers choose and syscalls).
                (SeqLabel::Choose(_), _)
                | (SeqLabel::ReadRlx(_, _), _)
                | (SeqLabel::WriteRlx(_, _), _)
                | (SeqLabel::Syscall(_), _)
                    if et.refines(es) =>
                {
                    refines_rec(tr_tgt_rest, r_tgt, tr_src_rest, r_src, r, na_locs)
                }
                // beh-acq-read / fence: F_tgt ∪ R ⊆ F_src, continue with ∅.
                (
                    SeqLabel::AcqRead {
                        loc: xt,
                        val: vt,
                        info: it,
                    },
                    SeqLabel::AcqRead {
                        loc: xs,
                        val: vs,
                        info: is,
                    },
                ) if xt == xs
                    && vt == vs
                    && it.p_before == is.p_before
                    && it.p_after == is.p_after
                    && it.vals == is.vals =>
                {
                    it.written.union(r).all(|x| is.written.contains(x))
                        && refines_rec(
                            tr_tgt_rest,
                            r_tgt,
                            tr_src_rest,
                            r_src,
                            &LocSet::new(),
                            na_locs,
                        )
                }
                (SeqLabel::AcqFence { info: it }, SeqLabel::AcqFence { info: is })
                    if it.p_before == is.p_before
                        && it.p_after == is.p_after
                        && it.vals == is.vals =>
                {
                    it.written.union(r).all(|x| is.written.contains(x))
                        && refines_rec(
                            tr_tgt_rest,
                            r_tgt,
                            tr_src_rest,
                            r_src,
                            &LocSet::new(),
                            na_locs,
                        )
                }
                // beh-rel-write / fence: compute R′ and continue.
                (
                    SeqLabel::RelWrite {
                        loc: xt,
                        val: vt,
                        info: it,
                    },
                    SeqLabel::RelWrite {
                        loc: xs,
                        val: vs,
                        info: is,
                    },
                ) if xt == xs
                    && vt.refines(*vs)
                    && it.p_before == is.p_before
                    && it.p_after == is.p_after =>
                {
                    let r_next = next_commitments(r, it, is);
                    refines_rec(tr_tgt_rest, r_tgt, tr_src_rest, r_src, &r_next, na_locs)
                }
                (SeqLabel::RelFence { info: it }, SeqLabel::RelFence { info: is })
                    if it.p_before == is.p_before && it.p_after == is.p_after =>
                {
                    let r_next = next_commitments(r, it, is);
                    refines_rec(tr_tgt_rest, r_tgt, tr_src_rest, r_src, &r_next, na_locs)
                }
                // RMWs combine the acquire and release bookkeeping.
                (
                    SeqLabel::Rmw {
                        loc: xt,
                        mode: mt,
                        read: rt,
                        write: wt,
                        acq: at,
                        rel: lt,
                    },
                    SeqLabel::Rmw {
                        loc: xs,
                        mode: ms,
                        read: rs,
                        write: ws,
                        acq: asrc,
                        rel: lsrc,
                    },
                ) if xt == xs && mt == ms && rt == rs => {
                    let write_ok = match (wt, ws) {
                        (None, None) => true,
                        (Some(a), Some(b)) => a.refines(*b),
                        _ => false,
                    };
                    if !write_ok {
                        return false;
                    }
                    let r_mid = match (at, asrc) {
                        (None, None) => Some(r.clone()),
                        (Some(it), Some(is))
                            if it.p_before == is.p_before
                                && it.p_after == is.p_after
                                && it.vals == is.vals
                                && it.written.union(r).all(|x| is.written.contains(x)) =>
                        {
                            Some(LocSet::new())
                        }
                        _ => None,
                    };
                    let Some(r_mid) = r_mid else { return false };
                    let r_next = match (lt, lsrc) {
                        (None, None) => Some(r_mid),
                        (Some(it), Some(is))
                            if it.p_before == is.p_before && it.p_after == is.p_after =>
                        {
                            Some(next_commitments(&r_mid, it, is))
                        }
                        _ => None,
                    };
                    let Some(r_next) = r_next else { return false };
                    refines_rec(tr_tgt_rest, r_tgt, tr_src_rest, r_src, &r_next, na_locs)
                }
                _ => {
                    // beh-failure with a non-empty (label-consuming) source
                    // path is handled by the [] case once the target trace
                    // is exhausted; a source at ⊥ with remaining labels
                    // must still match them pointwise, so mismatched heads
                    // fail here.
                    false
                }
            }
        }
        // Target has labels left but the source does not: only a ⊥ source
        // absorbs that (beh-failure applies with empty remaining source
        // trace, handled above via ([], [])-recursion order) — reaching
        // here means the source trace was shorter.
        (_rest_tgt, []) => matches!(r_src, BehaviorEnd::Bottom),
    }
}

/// `R′ = (R ∖ F_src) ∪ (F_tgt ∖ F_src) ∪ {y | V_tgt(y) ⋢ V_src(y)}`
/// (Fig. 2, `beh-rel-write`).
fn next_commitments(
    r: &LocSet,
    it: &crate::label::SyncInfo,
    is: &crate::label::SyncInfo,
) -> LocSet {
    let mut out: LocSet = r
        .iter()
        .chain(it.written.iter())
        .copied()
        .filter(|x| !is.written.contains(x))
        .collect();
    if !valuation_refines(&it.vals, &is.vals) {
        for (x, v) in &it.vals {
            if !is.vals.get(x).is_some_and(|sv| v.refines(*sv)) {
                out.insert(*x);
            }
        }
    }
    out
}

/// A refutation witness: a target behavior allowed by the oracle with no
/// matching source behavior allowed by the same oracle.
#[derive(Clone, Debug)]
pub struct OracleWitness {
    /// The unmatched target behavior.
    pub target_behavior: Behavior,
}

/// Def. 3.3 instantiated at one oracle: every oracle-allowed target
/// behavior must be `⊑_∅`-matched by an oracle-allowed source behavior.
///
/// Failing this check refutes `⊑_w` outright (the oracle is the witness);
/// passing it is a necessary condition only.
pub fn check_under_oracle<O: Oracle>(
    src_init: &SeqState,
    tgt_init: &SeqState,
    dom: &EnumDomain,
    oracle: &O,
) -> Result<(), OracleWitness> {
    let na_locs: LocSet = dom.na_locs.iter().copied().collect();
    let src_behs: Vec<Behavior> = enumerate_behaviors(src_init, dom)
        .into_iter()
        .filter(|b| oracle.allows_trace(&b.trace))
        .collect();
    for tb in enumerate_behaviors(tgt_init, dom) {
        if !oracle.allows_trace(&tb.trace) {
            continue;
        }
        let matched = src_behs
            .iter()
            .any(|sb| behavior_refines_advanced(&tb, sb, &LocSet::new(), &na_locs));
        if !matched {
            return Err(OracleWitness {
                target_behavior: tb,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Memory;
    use seqwm_lang::parser::parse_program;
    use seqwm_lang::Program;

    fn states(src: &str, tgt: &str, perm: &[&str]) -> (SeqState, SeqState, EnumDomain) {
        let s: Program = parse_program(src).unwrap();
        let t: Program = parse_program(tgt).unwrap();
        let dom = EnumDomain::for_pair(&s, &t);
        let p: LocSet = perm.iter().map(|n| Loc::new(n)).collect();
        (
            SeqState::new(&s, p.clone(), LocSet::new(), Memory::new()),
            SeqState::new(&t, p, LocSet::new(), Memory::new()),
            dom,
        )
    }

    #[test]
    fn free_oracle_allows_everything() {
        let o = FreeOracle;
        let tr = vec![
            SeqLabel::ReadRlx(Loc::new("orx"), Value::Int(1)),
            SeqLabel::Choose(Value::Undef),
        ];
        assert!(o.allows_trace(&tr));
        assert!(o.allows_trace(&[]));
    }

    #[test]
    fn pin_reads_oracle_constrains_reads() {
        let x = Loc::new("opx");
        let o = PinReadsOracle {
            loc: x,
            value: Value::Int(0),
            pin_choose: false,
        };
        assert!(o.allows_trace(&[SeqLabel::ReadRlx(x, Value::Int(0))]));
        assert!(!o.allows_trace(&[SeqLabel::ReadRlx(x, Value::Int(1))]));
        // Other locations and writes are unconstrained (progress).
        assert!(o.allows_trace(&[
            SeqLabel::ReadRlx(Loc::new("opy"), Value::Int(1)),
            SeqLabel::WriteRlx(x, Value::Int(5)),
        ]));
    }

    #[test]
    fn pin_oracle_refutes_read_dependent_ub() {
        // §3's second example: the source matches the target's UB only by
        // reading x = 1; an oracle pinning reads of x to 0 refutes it.
        let (src, tgt, dom) = states(
            "a := load[rlx](oqx); if (a == 1) { abort; } while 1 { skip; }",
            "abort;",
            &[],
        );
        let x = Loc::new("oqx");
        assert!(
            check_under_oracle(
                &src,
                &tgt,
                &dom,
                &PinReadsOracle {
                    loc: x,
                    value: Value::Int(0),
                    pin_choose: false
                }
            )
            .is_err(),
            "the pinning oracle must refute the reordering"
        );
        // The free oracle, by contrast, cannot refute it: the source may
        // read 1 and reach UB.
        assert!(check_under_oracle(&src, &tgt, &dom, &FreeOracle).is_ok());
    }

    #[test]
    fn oracle_check_agrees_with_game_on_late_ub() {
        // The §3 motivating example HOLDS (⊑_w): no oracle refutes it.
        let (src, tgt, dom) = states(
            "a := load[rlx](olx); store[na](oly, 1);",
            "store[na](oly, 1); a := load[rlx](olx);",
            &[], // no permission on oly: both sides reach ⊥
        );
        for v in [Value::Int(0), Value::Int(1), Value::Undef] {
            let o = PinReadsOracle {
                loc: Loc::new("olx"),
                value: v,
                pin_choose: false,
            };
            assert!(
                check_under_oracle(&src, &tgt, &dom, &o).is_ok(),
                "no pinning oracle may refute the late-UB reorder (v = {v})"
            );
        }
        assert!(check_under_oracle(&src, &tgt, &dom, &FreeOracle).is_ok());
    }

    #[test]
    fn no_gain_oracle_blocks_acquire_gains() {
        let y = Loc::new("ogy");
        let o = NoGainOracle { loc: y };
        let gain = SeqLabel::AcqRead {
            loc: Loc::new("ogf"),
            val: Value::Int(0),
            info: crate::label::SyncInfo {
                p_before: LocSet::new(),
                p_after: [y].into_iter().collect(),
                written: LocSet::new(),
                vals: [(y, Value::Int(0))].into_iter().collect(),
            },
        };
        assert!(!o.allows_trace(std::slice::from_ref(&gain)));
        let no_gain = SeqLabel::AcqRead {
            loc: Loc::new("ogf"),
            val: Value::Int(0),
            info: crate::label::SyncInfo {
                p_before: LocSet::new(),
                p_after: LocSet::new(),
                written: LocSet::new(),
                vals: Valuation::new(),
            },
        };
        assert!(o.allows_trace(std::slice::from_ref(&no_gain)));
    }

    #[test]
    fn fig2_relation_validates_example_3_5_traces() {
        // The worked ⊑_∅ derivation at the end of Example 3.5:
        // ⟨rel({x},{x},{x},v), r⟩ ⊑_∅ ⟨rel({x},{x},∅,M(x)), r⟩ via ⊑_{x}.
        let x = Loc::new("o35x");
        let y = Loc::new("o35y");
        let na: LocSet = [x].into_iter().collect();
        let rel = |written: &[Loc], memv: i64| SeqLabel::RelWrite {
            loc: y,
            val: Value::Int(5),
            info: crate::label::SyncInfo {
                p_before: [x].into_iter().collect(),
                p_after: [x].into_iter().collect(),
                written: written.iter().copied().collect(),
                vals: [(x, Value::Int(memv))].into_iter().collect(),
            },
        };
        let term = |memv: i64| BehaviorEnd::Term {
            val: Value::Int(0),
            written: [x].into_iter().collect(),
            mem: [(x, Value::Int(memv))].into_iter().collect(),
        };
        // Target wrote x := v (= 1) before the release; source did not
        // (its release records the initial memory 0), but later writes
        // x := v' (= 2) fulfilling the commitment.
        let tgt = Behavior {
            trace: vec![rel(&[x], 1)],
            end: term(2),
        };
        let src = Behavior {
            trace: vec![rel(&[], 0)],
            end: term(2),
        };
        assert!(behavior_refines_advanced(&tgt, &src, &LocSet::new(), &na));
        // Without the later write the commitment is unfulfilled.
        let src_unfulfilled = Behavior {
            trace: vec![rel(&[], 0)],
            end: BehaviorEnd::Term {
                val: Value::Int(0),
                written: LocSet::new(),
                mem: [(x, Value::Int(0))].into_iter().collect(),
            },
        };
        assert!(!behavior_refines_advanced(
            &tgt,
            &src_unfulfilled,
            &LocSet::new(),
            &na
        ));
    }
}
