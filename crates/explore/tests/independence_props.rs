//! Property tests for the independence relation (`groups_independent`).
//!
//! Groups are generated from a vocabulary of *contract-consistent*
//! shapes (opaque, shared-pure, pure-local, pure reader of a location,
//! NA writer, atomic writer) — the relation's soundness contracts make
//! flag combinations like "shared-pure writer" meaningless, so the
//! generator never produces them. Randomness comes from the crate's
//! own `SplitMix64` (the workspace is dependency-free by design).

use seqwm_explore::{fp64, groups_independent, AgentGroup, IndependenceRule, SplitMix64};

/// The location vocabulary: small so same-location pairs are common.
const LOCS: [u32; 3] = [0, 1, 2];

#[derive(Clone, Copy, Debug, PartialEq)]
enum Shape {
    /// No claims at all (e.g. a group containing a racy write).
    Opaque,
    /// Shared-pure with no pinned read location (e.g. a fence).
    Pure,
    /// Pure-local: neither reads nor writes shared state (a silent
    /// compute / choice / syscall step). `local` implies `shared_pure`
    /// per the flag contract, so the generator sets both.
    Local,
    /// A pure read of one location.
    Reader(u32),
    /// A non-atomic write to one location.
    NaWriter(u32),
    /// An atomic write to one location (canonical-adapter claim).
    AtomicWriter(u32),
}

fn group(agent: usize, shape: Shape) -> AgentGroup<u8, u8> {
    let mut g = AgentGroup {
        agent,
        transitions: Vec::new(),
        shared_pure: false,
        local: false,
        na_write: None,
        shared_read: None,
        atomic_write: None,
    };
    match shape {
        Shape::Opaque => {}
        Shape::Pure => g.shared_pure = true,
        Shape::Local => {
            g.shared_pure = true;
            g.local = true;
        }
        Shape::Reader(l) => {
            g.shared_pure = true;
            g.shared_read = Some(fp64(&l));
        }
        Shape::NaWriter(l) => g.na_write = Some(fp64(&l)),
        Shape::AtomicWriter(l) => g.atomic_write = Some(fp64(&l)),
    }
    g
}

fn sample(rng: &mut SplitMix64) -> Shape {
    let loc = LOCS[(rng.next_u64() % LOCS.len() as u64) as usize];
    match rng.next_u64() % 6 {
        0 => Shape::Opaque,
        1 => Shape::Pure,
        2 => Shape::Local,
        3 => Shape::Reader(loc),
        4 => Shape::NaWriter(loc),
        _ => Shape::AtomicWriter(loc),
    }
}

const ROUNDS: usize = 2_000;

#[test]
fn relation_is_symmetric() {
    let mut rng = SplitMix64::new(0x1dcb);
    for _ in 0..ROUNDS {
        let (sa, sb) = (sample(&mut rng), sample(&mut rng));
        let a = group(0, sa);
        let b = group(1, sb);
        assert_eq!(
            groups_independent(&a, &b),
            groups_independent(&b, &a),
            "asymmetric on {sa:?} vs {sb:?}"
        );
    }
}

#[test]
fn same_location_writes_never_commute() {
    for &l in &LOCS {
        for wa in [Shape::NaWriter(l), Shape::AtomicWriter(l)] {
            for wb in [Shape::NaWriter(l), Shape::AtomicWriter(l)] {
                let a = group(0, wa);
                let b = group(1, wb);
                assert_eq!(
                    groups_independent(&a, &b),
                    IndependenceRule::Dependent,
                    "same-location write pair {wa:?}/{wb:?} must not commute"
                );
            }
        }
    }
}

#[test]
fn reader_never_commutes_with_same_location_write() {
    // Both directions: the writer must not sleep the reader, and the
    // reader must not sleep the writer (the guard symmetric to the
    // NA-write rule's read exclusion).
    for &l in &LOCS {
        let r = group(0, Shape::Reader(l));
        for w in [Shape::NaWriter(l), Shape::AtomicWriter(l)] {
            let w = group(1, w);
            assert_eq!(groups_independent(&r, &w), IndependenceRule::Dependent);
            assert_eq!(groups_independent(&w, &r), IndependenceRule::Dependent);
        }
    }
}

#[test]
fn readers_commute_with_each_other_and_with_distinct_writes() {
    let r0 = group(0, Shape::Reader(0));
    let r1 = group(1, Shape::Reader(1));
    let r0b = group(1, Shape::Reader(0));
    // Read/read commutes regardless of location. A pair of readers is
    // also shared-pure, so the (stronger) pure rule claims it first.
    assert_eq!(groups_independent(&r0, &r1), IndependenceRule::Pure);
    assert_eq!(groups_independent(&r0, &r0b), IndependenceRule::Pure);
    // Distinct-location read-vs-write pairs go through the read rule.
    for w in [Shape::NaWriter(1), Shape::AtomicWriter(1)] {
        let w = group(1, w);
        assert_eq!(groups_independent(&r0, &w), IndependenceRule::Read);
        assert_eq!(groups_independent(&w, &r0), IndependenceRule::Read);
    }
}

#[test]
fn distinct_location_write_pairs_pick_the_weakest_needed_rule() {
    let na0 = group(0, Shape::NaWriter(0));
    let na1 = group(1, Shape::NaWriter(1));
    let at0 = group(0, Shape::AtomicWriter(0));
    let at1 = group(1, Shape::AtomicWriter(1));
    // NA/NA commutes state-on-the-nose: NaWrite rule.
    assert_eq!(groups_independent(&na0, &na1), IndependenceRule::NaWrite);
    // Any pair with an atomic side needs the canonical quotient:
    // attributed to (and disableable via) the atomic rule.
    assert_eq!(
        groups_independent(&at0, &at1),
        IndependenceRule::AtomicWrite
    );
    assert_eq!(
        groups_independent(&na0, &at1),
        IndependenceRule::AtomicWrite
    );
    assert_eq!(
        groups_independent(&at0, &na1),
        IndependenceRule::AtomicWrite
    );
}

#[test]
fn local_commutes_with_every_write_and_rides_the_write_rules() {
    // The local-vs-write grant: a pure-local step commutes with a
    // write to ANY location (same-location pairs don't exist — local
    // touches no location), attributed to the write side's rule so the
    // toggles keep gating it.
    let l = group(0, Shape::Local);
    for &loc in &LOCS {
        let na = group(1, Shape::NaWriter(loc));
        assert_eq!(groups_independent(&l, &na), IndependenceRule::NaWrite);
        assert_eq!(groups_independent(&na, &l), IndependenceRule::NaWrite);
        let at = group(1, Shape::AtomicWriter(loc));
        assert_eq!(groups_independent(&l, &at), IndependenceRule::AtomicWrite);
        assert_eq!(groups_independent(&at, &l), IndependenceRule::AtomicWrite);
    }
    // Local vs pure / reader / local is already covered by the
    // (stronger) pure/pure rule — local implies shared_pure.
    for s in [Shape::Pure, Shape::Local, Shape::Reader(0)] {
        assert_eq!(groups_independent(&l, &group(1, s)), IndependenceRule::Pure);
    }
    // A merely-pure (non-local) group still does NOT commute with a
    // write: purity licenses nothing against mutation (a pure read's
    // values change under a write).
    let p = group(0, Shape::Pure);
    for w in [Shape::NaWriter(0), Shape::AtomicWriter(0)] {
        assert_eq!(
            groups_independent(&p, &group(1, w)),
            IndependenceRule::Dependent
        );
    }
    // And local vs opaque stays dependent: no claim, no grant.
    assert_eq!(
        groups_independent(&l, &group(1, Shape::Opaque)),
        IndependenceRule::Dependent
    );
}

#[test]
fn independence_implies_a_granting_rule_and_dependence_none() {
    // Rule-level sanity over random pairs: `independent()` is exactly
    // "some rule other than Dependent", and claim-free (opaque) groups
    // never commute with anything but nothing-at-stake pure pairs.
    let mut rng = SplitMix64::new(0xace5);
    for _ in 0..ROUNDS {
        let (sa, sb) = (sample(&mut rng), sample(&mut rng));
        let a = group(0, sa);
        let b = group(1, sb);
        let rule = groups_independent(&a, &b);
        assert_eq!(rule.independent(), rule != IndependenceRule::Dependent);
        if sa == Shape::Opaque || sb == Shape::Opaque {
            assert_eq!(
                rule,
                IndependenceRule::Dependent,
                "an opaque group commutes with nothing ({sa:?} vs {sb:?})"
            );
        }
    }
}
