//! Versioned on-disk checkpoints of an exploration in progress.
//!
//! # Why paths, not states
//!
//! The engine's `State` type is generic and carries no serialization
//! contract, so the checkpoint never stores a state. Instead it stores
//! each frontier entry (and each discovered behavior) as the *path* of
//! flat transition indices that reached it from the initial state.
//! [`TransitionSystem`](crate::TransitionSystem) implementations are
//! required to be deterministic — the same state always enumerates the
//! same agent groups in the same order — so a resume replays each path
//! through `agent_groups` to reconstruct the exact state. A replay
//! that walks off the enumerated transitions proves the checkpoint
//! stale (or the system nondeterministic) and is rejected as corrupt.
//!
//! The visited set is stored as raw fingerprint → sleep-mask pairs.
//! An exact visited set is fingerprinted on save (fp128), which is why
//! resuming an exact-mode run records a
//! [`ResumeVisitedDowngrade`](crate::ExploreWarning::ResumeVisitedDowngrade)
//! warning.
//!
//! # Format (all integers little-endian)
//!
//! ```text
//! magic   4  b"SQWM"
//! version 1  = 2
//! level   1  visited representation: 1 = fp128, 2 = fp64
//! digest  8  fp64 of the initial state (system identity check)
//! states  8  cumulative distinct states expanded
//! counters 8×8  transitions, dedup, sleep-skips, ample, pruned,
//!               racy, promises, quarantined
//! visited  8 + n×(8|16 + 8)   count, then fingerprint + sleep mask
//! frontier 8 + Σ(1 + 8 + 4 + 4·len)  flags, sleep, path len, path
//! behaviors 8 + Σ(1 + [4] + 4 + 4·len)  kind, [emit idx], path
//! spill    4 + 8 + Σ(4 + name + 4 + 1 + 8 + 8)
//!             shard count at save, manifest count, then per segment:
//!             name len + name, shard, level, entries, checksum
//! checksum 8  fp64 of every preceding byte
//! ```
//!
//! Saves go to `<path>.tmp` and are renamed into place, so a crash
//! mid-save leaves the previous checkpoint intact.

use std::path::Path;

use crate::error::{CorruptReason, ExploreWarning};
use crate::fingerprint::fp64;
use crate::spill::{valid_segment_name, SpillSeg};

const MAGIC: &[u8; 4] = b"SQWM";
/// Current checkpoint format version. Version 2 added the spill
/// manifest (the shard count at save time plus one record per
/// disk-resident spill segment) after the behaviors section.
pub const CHECKPOINT_VERSION: u8 = 2;

/// Visited representation stored on disk: 128-bit fingerprints.
pub(crate) const LEVEL_FP128: u8 = 1;
/// Visited representation stored on disk: 64-bit fingerprints.
pub(crate) const LEVEL_FP64: u8 = 2;

/// A frontier entry, as stored: the path that reaches its state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SavedJob {
    /// The state is already in the visited set and must be re-expanded
    /// without a dedup check (it was interrupted mid-expansion or is a
    /// retry of a faulted expansion).
    pub revisit: bool,
    /// Sleep mask to expand with.
    pub sleep: u64,
    /// Flat transition indices from the initial state.
    pub path: Vec<u32>,
}

/// A discovered behavior, as stored: the path to the state where it
/// was observed, plus how it was observed there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SavedBehavior {
    /// `None`: the behavior is `terminal_behavior` of the path's end
    /// state. `Some(i)`: it is the `Behavior` target of the end
    /// state's `i`-th flat transition.
    pub emit: Option<u32>,
    /// Flat transition indices from the initial state.
    pub path: Vec<u32>,
}

/// Cumulative counters carried across a resume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SavedCounters {
    pub states: u64,
    pub transitions: u64,
    pub dedup_hits: u64,
    pub sleep_skips: u64,
    pub ample_commits: u64,
    pub pruned: u64,
    pub racy_steps: u64,
    pub promise_steps: u64,
    pub quarantined: u64,
}

/// Everything a checkpoint stores.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct CheckpointData {
    /// Visited representation: [`LEVEL_FP128`] or [`LEVEL_FP64`].
    pub level: u8,
    /// fp64 of the initial state, for system-identity validation.
    pub digest: u64,
    pub counters: SavedCounters,
    /// Only one of the two visited vectors is populated (per `level`).
    pub visited64: Vec<(u64, u64)>,
    pub visited128: Vec<(u128, u64)>,
    pub frontier: Vec<SavedJob>,
    pub behaviors: Vec<SavedBehavior>,
    /// Visited shard count when the manifest was taken. Spill-segment
    /// placement is `fp % shards`, so a resume with a different shard
    /// count must ignore the manifest.
    pub spill_shards: u32,
    /// Disk-resident spill segments this checkpoint's frontier depends
    /// on; a resume re-adopts (and re-validates) each one.
    pub spill: Vec<SpillSeg>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_path(out: &mut Vec<u8>, path: &[u32]) {
    put_u32(out, path.len() as u32);
    for &idx in path {
        put_u32(out, idx);
    }
}

/// Serializes a checkpoint, checksum included.
pub(crate) fn encode(data: &CheckpointData) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + data.visited64.len() * 16
            + data.visited128.len() * 24
            + data.frontier.len() * 16
            + data.behaviors.len() * 16,
    );
    out.extend_from_slice(MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.push(data.level);
    put_u64(&mut out, data.digest);
    let c = &data.counters;
    for v in [
        c.states,
        c.transitions,
        c.dedup_hits,
        c.sleep_skips,
        c.ample_commits,
        c.pruned,
        c.racy_steps,
        c.promise_steps,
        c.quarantined,
    ] {
        put_u64(&mut out, v);
    }
    match data.level {
        LEVEL_FP64 => {
            put_u64(&mut out, data.visited64.len() as u64);
            for &(fp, mask) in &data.visited64 {
                put_u64(&mut out, fp);
                put_u64(&mut out, mask);
            }
        }
        _ => {
            put_u64(&mut out, data.visited128.len() as u64);
            for &(fp, mask) in &data.visited128 {
                put_u64(&mut out, fp as u64);
                put_u64(&mut out, (fp >> 64) as u64);
                put_u64(&mut out, mask);
            }
        }
    }
    put_u64(&mut out, data.frontier.len() as u64);
    for j in &data.frontier {
        out.push(u8::from(j.revisit));
        put_u64(&mut out, j.sleep);
        put_path(&mut out, &j.path);
    }
    put_u64(&mut out, data.behaviors.len() as u64);
    for b in &data.behaviors {
        match b.emit {
            None => out.push(0),
            Some(i) => {
                out.push(1);
                put_u32(&mut out, i);
            }
        }
        put_path(&mut out, &b.path);
    }
    put_u32(&mut out, data.spill_shards);
    put_u64(&mut out, data.spill.len() as u64);
    for seg in &data.spill {
        put_u32(&mut out, seg.name.len() as u32);
        out.extend_from_slice(seg.name.as_bytes());
        put_u32(&mut out, seg.shard);
        out.push(seg.level);
        put_u64(&mut out, seg.entries);
        put_u64(&mut out, seg.checksum);
    }
    let sum = fp64(&out);
    put_u64(&mut out, sum);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CorruptReason> {
        if self.pos + n > self.buf.len() {
            return Err(CorruptReason::TooShort);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CorruptReason> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CorruptReason> {
        let mut w = [0u8; 4];
        w.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(w))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CorruptReason> {
        let mut w = [0u8; 8];
        w.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(w))
    }

    /// A count field, sanity-bounded by the bytes that remain: every
    /// counted item occupies at least `min_item` bytes, so a count
    /// that implies more data than exists is malformed (and protects
    /// the decoder from absurd preallocations).
    pub(crate) fn count(
        &mut self,
        min_item: usize,
        what: &'static str,
    ) -> Result<usize, CorruptReason> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_item.max(1)) > self.buf.len().saturating_sub(self.pos) {
            return Err(CorruptReason::Malformed(what));
        }
        Ok(n)
    }

    pub(crate) fn path(&mut self) -> Result<Vec<u32>, CorruptReason> {
        let len = self.u32()? as usize;
        if len.saturating_mul(4) > self.buf.len().saturating_sub(self.pos) {
            return Err(CorruptReason::Malformed("path length"));
        }
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            path.push(self.u32()?);
        }
        Ok(path)
    }
}

/// Parses and validates a checkpoint image.
pub(crate) fn decode(buf: &[u8]) -> Result<CheckpointData, CorruptReason> {
    if buf.len() < MAGIC.len() + 2 + 8 {
        return Err(CorruptReason::TooShort);
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(sum_bytes);
    if u64::from_le_bytes(sum) != fp64(&body) {
        return Err(CorruptReason::ChecksumMismatch);
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CorruptReason::BadMagic);
    }
    let version = r.u8()?;
    if version != CHECKPOINT_VERSION {
        return Err(CorruptReason::UnsupportedVersion(version));
    }
    let level = r.u8()?;
    if level != LEVEL_FP128 && level != LEVEL_FP64 {
        return Err(CorruptReason::Malformed("visited level"));
    }
    let digest = r.u64()?;
    let counters = SavedCounters {
        states: r.u64()?,
        transitions: r.u64()?,
        dedup_hits: r.u64()?,
        sleep_skips: r.u64()?,
        ample_commits: r.u64()?,
        pruned: r.u64()?,
        racy_steps: r.u64()?,
        promise_steps: r.u64()?,
        quarantined: r.u64()?,
    };
    let mut data = CheckpointData {
        level,
        digest,
        counters,
        ..CheckpointData::default()
    };
    match level {
        LEVEL_FP64 => {
            let n = r.count(16, "visited count")?;
            data.visited64.reserve(n);
            for _ in 0..n {
                let fp = r.u64()?;
                let mask = r.u64()?;
                data.visited64.push((fp, mask));
            }
        }
        _ => {
            let n = r.count(24, "visited count")?;
            data.visited128.reserve(n);
            for _ in 0..n {
                let lo = r.u64()?;
                let hi = r.u64()?;
                let mask = r.u64()?;
                data.visited128
                    .push((((hi as u128) << 64) | lo as u128, mask));
            }
        }
    }
    let n = r.count(13, "frontier count")?;
    data.frontier.reserve(n);
    for _ in 0..n {
        let flags = r.u8()?;
        if flags > 1 {
            return Err(CorruptReason::Malformed("frontier flags"));
        }
        let sleep = r.u64()?;
        let path = r.path()?;
        data.frontier.push(SavedJob {
            revisit: flags == 1,
            sleep,
            path,
        });
    }
    let n = r.count(5, "behavior count")?;
    data.behaviors.reserve(n);
    for _ in 0..n {
        let kind = r.u8()?;
        let emit = match kind {
            0 => None,
            1 => Some(r.u32()?),
            _ => return Err(CorruptReason::Malformed("behavior kind")),
        };
        let path = r.path()?;
        data.behaviors.push(SavedBehavior { emit, path });
    }
    data.spill_shards = r.u32()?;
    let n = r.count(25, "spill manifest count")?;
    data.spill.reserve(n);
    for _ in 0..n {
        let name_len = r.u32()? as usize;
        if name_len > 128 {
            return Err(CorruptReason::Malformed("spill segment name length"));
        }
        let name = match std::str::from_utf8(r.take(name_len)?) {
            Ok(s) => s.to_string(),
            Err(_) => return Err(CorruptReason::Malformed("spill segment name")),
        };
        if !valid_segment_name(&name) {
            return Err(CorruptReason::Malformed("spill segment name"));
        }
        let shard = r.u32()?;
        let level = r.u8()?;
        if level != LEVEL_FP128 && level != LEVEL_FP64 {
            return Err(CorruptReason::Malformed("spill segment level"));
        }
        let entries = r.u64()?;
        let checksum = r.u64()?;
        data.spill.push(SpillSeg {
            name,
            shard,
            level,
            entries,
            checksum,
        });
    }
    if r.pos != body.len() {
        return Err(CorruptReason::Malformed("trailing bytes"));
    }
    Ok(data)
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Writes a checkpoint atomically (`<path>.tmp` then rename). Returns
/// the degradation to record on failure; the engine keeps running.
pub(crate) fn save(path: &Path, data: &CheckpointData) -> Result<(), ExploreWarning> {
    let bytes = encode(data);
    let failed = |message: String| ExploreWarning::CheckpointSaveFailed {
        path: path.to_path_buf(),
        message,
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| failed(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| failed(e.to_string()))?;
    crate::counters::add(&crate::counters::CHECKPOINT_BYTES, bytes.len() as u64);
    Ok(())
}

/// Reads and validates a checkpoint. `Ok(Err(_))` is a validation
/// failure (corrupt file), `Err(_)` an I/O failure; both fall back to
/// a fresh run at the engine level.
pub(crate) fn load(path: &Path) -> Result<Result<CheckpointData, CorruptReason>, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    Ok(decode(&bytes))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            level: LEVEL_FP64,
            digest: 0xABCD_EF01,
            counters: SavedCounters {
                states: 42,
                transitions: 99,
                dedup_hits: 7,
                ..SavedCounters::default()
            },
            visited64: vec![(1, 0), (2, 3), (u64::MAX, u64::MAX)],
            visited128: vec![],
            frontier: vec![
                SavedJob {
                    revisit: false,
                    sleep: 0,
                    path: vec![0, 1, 2],
                },
                SavedJob {
                    revisit: true,
                    sleep: 5,
                    path: vec![],
                },
            ],
            behaviors: vec![
                SavedBehavior {
                    emit: None,
                    path: vec![3],
                },
                SavedBehavior {
                    emit: Some(7),
                    path: vec![0, 0],
                },
            ],
            spill_shards: 16,
            spill: vec![
                SpillSeg {
                    name: "seg-3-0.spill".to_string(),
                    shard: 3,
                    level: LEVEL_FP64,
                    entries: 11,
                    checksum: 0xFEED_BEEF,
                },
                SpillSeg {
                    name: "seg-0-1.spill".to_string(),
                    shard: 0,
                    level: LEVEL_FP128,
                    entries: 2,
                    checksum: 1,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let data = sample();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        let mut data128 = sample();
        data128.level = LEVEL_FP128;
        data128.visited64.clear();
        data128.visited128 = vec![(1u128 << 90 | 7, 0), (u128::MAX, 1)];
        assert_eq!(decode(&encode(&data128)).unwrap(), data128);
    }

    #[test]
    fn zero_byte_and_short_files_rejected() {
        assert_eq!(decode(&[]), Err(CorruptReason::TooShort));
        assert_eq!(decode(&[0x53; 10]), Err(CorruptReason::TooShort));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&sample());
        for cut in [1, 8, bytes.len() / 2, bytes.len() - 1] {
            let r = decode(&bytes[..bytes.len() - cut]);
            assert!(r.is_err(), "truncated by {cut} must be rejected");
        }
    }

    #[test]
    fn bit_flips_rejected_by_checksum() {
        let bytes = encode(&sample());
        for pos in [0, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_err(), "bit flip at {pos} must be rejected");
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode(&sample());
        bytes[4] = CHECKPOINT_VERSION + 1;
        // Fix the checksum so only the version check can reject.
        let n = bytes.len();
        let sum = fp64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode(&bytes),
            Err(CorruptReason::UnsupportedVersion(CHECKPOINT_VERSION + 1))
        );
    }

    #[test]
    fn absurd_counts_rejected_without_allocation() {
        // A forged count of u64::MAX items must be caught by the
        // remaining-bytes bound, not by an OOM.
        let mut data = sample();
        data.frontier.clear();
        data.behaviors.clear();
        data.visited64.clear();
        let mut bytes = encode(&data);
        // The visited count field sits right after header+counters.
        let count_at = 4 + 1 + 1 + 8 + 9 * 8;
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let n = bytes.len();
        let sum = fp64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode(&bytes),
            Err(CorruptReason::Malformed("visited count"))
        );
    }

    #[test]
    fn hostile_spill_manifest_names_rejected() {
        // encode() does not validate names (the engine only produces
        // valid ones); decode() must, so a forged checkpoint cannot
        // steer the resume at files outside the spill dir.
        for bad in ["../escape.spill", ".hidden", "a/b.spill", ""] {
            let mut data = sample();
            data.spill = vec![SpillSeg {
                name: bad.to_string(),
                shard: 0,
                level: LEVEL_FP64,
                entries: 0,
                checksum: 0,
            }];
            assert_eq!(
                decode(&encode(&data)),
                Err(CorruptReason::Malformed("spill segment name")),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("seqwm-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let data = sample();
        save(&path, &data).unwrap();
        assert_eq!(load(&path).unwrap().unwrap(), data);
        // Missing file is an I/O error, not a corruption.
        assert!(load(&dir.join("missing.ckpt")).is_err());
        // Zero-byte file is corrupt.
        let zero = dir.join("zero.ckpt");
        std::fs::write(&zero, b"").unwrap();
        assert_eq!(load(&zero).unwrap(), Err(CorruptReason::TooShort));
        std::fs::remove_dir_all(&dir).ok();
    }
}
