//! Structured exploration statistics.

use std::fmt;
use std::time::Duration;

/// What the engine did and why it stopped. Returned with every
/// exploration; rendered by the CLI and the experiments report.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Distinct states expanded (after deduplication).
    pub states: usize,
    /// Transitions enumerated across all expanded states.
    pub transitions: usize,
    /// Frontier entries skipped because their state was already
    /// visited (with a covering sleep set).
    pub dedup_hits: usize,
    /// Agent groups skipped by sleep-set reduction.
    pub sleep_skips: usize,
    /// States expanded through a single local agent group (ample-set
    /// reduction) instead of the full product of agents.
    pub ample_commits: usize,
    /// Transitions the system enumerated but filtered (e.g. failed
    /// certification).
    pub pruned: usize,
    /// Racy-access steps observed.
    pub racy_steps: usize,
    /// Promise steps observed.
    pub promise_steps: usize,
    /// A state/depth/step budget was hit: behaviors may be missing.
    pub truncated: bool,
    /// The wall-clock deadline fired (implies `truncated`).
    pub deadline_hit: bool,
    /// Number of worker threads used.
    pub workers: usize,
    /// States expanded by each worker (utilization balance).
    pub worker_states: Vec<usize>,
    /// Wall-clock time spent exploring.
    pub elapsed: Duration,
}

impl ExploreStats {
    /// Fraction of frontier pops answered by the visited set.
    pub fn dedup_hit_rate(&self) -> f64 {
        let total = self.states + self.dedup_hits;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }

    /// Merges another worker's (or round's) counters into this one.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.dedup_hits += other.dedup_hits;
        self.sleep_skips += other.sleep_skips;
        self.ample_commits += other.ample_commits;
        self.pruned += other.pruned;
        self.racy_steps += other.racy_steps;
        self.promise_steps += other.promise_steps;
        self.truncated |= other.truncated;
        self.deadline_hit |= other.deadline_hit;
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "states: {} (dedup hits: {}, hit-rate {:.1}%)",
            self.states,
            self.dedup_hits,
            100.0 * self.dedup_hit_rate()
        )?;
        writeln!(
            f,
            "transitions: {} (pruned: {}, racy: {}, promises: {})",
            self.transitions, self.pruned, self.racy_steps, self.promise_steps
        )?;
        writeln!(
            f,
            "reduction: {} sleep skips, {} ample commits",
            self.sleep_skips, self.ample_commits
        )?;
        write!(
            f,
            "workers: {} {:?}, elapsed: {:.3}ms{}{}",
            self.workers,
            self.worker_states,
            self.elapsed.as_secs_f64() * 1e3,
            if self.truncated { ", TRUNCATED" } else { "" },
            if self.deadline_hit { " (deadline)" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(ExploreStats::default().dedup_hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_and_ors_flags() {
        let mut a = ExploreStats {
            states: 10,
            dedup_hits: 5,
            ..ExploreStats::default()
        };
        let b = ExploreStats {
            states: 3,
            truncated: true,
            ..ExploreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.states, 13);
        assert!(a.truncated);
        assert!((a.dedup_hit_rate() - 5.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_truncation() {
        let s = ExploreStats {
            truncated: true,
            ..ExploreStats::default()
        };
        assert!(s.to_string().contains("TRUNCATED"));
    }
}
