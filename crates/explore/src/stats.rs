//! Structured exploration statistics.

use std::fmt;
use std::time::Duration;

use crate::error::{ExploreIncident, ExploreWarning, StopReason};

/// What the engine did and why it stopped. Returned with every
/// exploration; rendered by the CLI and the experiments report.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Distinct states expanded (after deduplication).
    pub states: usize,
    /// Transitions enumerated across all expanded states.
    pub transitions: usize,
    /// Frontier entries skipped because their state was already
    /// visited (with a covering sleep set).
    pub dedup_hits: usize,
    /// Agent groups skipped by sleep-set reduction.
    pub sleep_skips: usize,
    /// States expanded through a single local agent group (ample-set
    /// reduction) instead of the full product of agents.
    pub ample_commits: usize,
    /// Sleep-set bits granted by the non-atomic-write commutation rule
    /// (distinct-location `AgentGroup::na_write` pairs) that the
    /// pure-vs-pure rule alone would not have granted.
    pub na_commutes: usize,
    /// Sleep-set bits granted by the read/read (or read vs
    /// distinct-location write) rule (`AgentGroup::shared_read`).
    pub read_commutes: usize,
    /// Sleep-set bits granted by the atomic-write commutation rule
    /// (distinct-location `AgentGroup::atomic_write` pairs, sound only
    /// under a canonicalizing state quotient).
    pub atomic_commutes: usize,
    /// Transitions the system enumerated but filtered (e.g. failed
    /// certification).
    pub pruned: usize,
    /// Racy-access steps observed.
    pub racy_steps: usize,
    /// Promise steps observed.
    pub promise_steps: usize,
    /// A state/depth/step budget was hit: behaviors may be missing.
    pub truncated: bool,
    /// The wall-clock deadline fired (implies `truncated`).
    pub deadline_hit: bool,
    /// Why the search ended (structured form of the flags above).
    pub stop: StopReason,
    /// Number of worker threads used.
    pub workers: usize,
    /// States expanded by each worker (utilization balance).
    pub worker_states: Vec<usize>,
    /// Wall-clock time spent exploring.
    pub elapsed: Duration,
    /// Recovered worker faults (caught panics), capped at
    /// [`MAX_RECORDED_INCIDENTS`](Self::MAX_RECORDED_INCIDENTS);
    /// `incident_count` has the true total.
    pub incidents: Vec<ExploreIncident>,
    /// Total caught panics, including ones beyond the recording cap.
    pub incident_count: usize,
    /// States abandoned after exhausting their expansion retries.
    /// Behaviors reachable only through them may be missing.
    pub quarantined: usize,
    /// Faulted expansions that succeeded on retry (no behavior loss).
    pub retried: usize,
    /// Non-fatal degradations (corrupt resume, failed save, memory
    /// downgrades).
    pub warnings: Vec<ExploreWarning>,
    /// Visited-set downgrades taken (exact→fp128 and/or fp128→fp64).
    pub downgrades: usize,
    /// The run restored state from a checkpoint.
    pub resumed: bool,
    /// Checkpoints written during and after the run.
    pub checkpoint_saves: usize,
    /// Visited-set shards spilled to disk under memory pressure.
    pub spill_shards: u64,
    /// Bytes of spill-segment data written to disk.
    pub spill_bytes: u64,
    /// Membership probes that touched a spilled segment on disk.
    pub spill_probes: u64,
    /// Disk probes that found their fingerprint in a spilled segment.
    pub spill_hits: u64,
    /// Spill segments quarantined as corrupt (their fingerprints were
    /// conservatively treated as unvisited).
    pub spill_quarantined: u64,
}

impl ExploreStats {
    /// Cap on individually-recorded incidents (the count keeps going).
    pub const MAX_RECORDED_INCIDENTS: usize = 64;

    /// Fraction of frontier pops answered by the visited set.
    pub fn dedup_hit_rate(&self) -> f64 {
        let total = self.states + self.dedup_hits;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }

    /// No faults were recovered and nothing was quarantined: the
    /// result is exactly what a fault-free run would have produced.
    pub fn fault_free(&self) -> bool {
        self.incident_count == 0 && self.quarantined == 0
    }

    /// Merges another worker's (or round's) counters into this one.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.dedup_hits += other.dedup_hits;
        self.sleep_skips += other.sleep_skips;
        self.ample_commits += other.ample_commits;
        self.na_commutes += other.na_commutes;
        self.read_commutes += other.read_commutes;
        self.atomic_commutes += other.atomic_commutes;
        self.pruned += other.pruned;
        self.racy_steps += other.racy_steps;
        self.promise_steps += other.promise_steps;
        self.truncated |= other.truncated;
        self.deadline_hit |= other.deadline_hit;
        self.retried += other.retried;
        if self.stop == StopReason::Completed {
            self.stop = other.stop;
        }
        for i in &other.incidents {
            if self.incidents.len() < Self::MAX_RECORDED_INCIDENTS {
                self.incidents.push(i.clone());
            }
        }
        self.incident_count += other.incident_count;
        self.quarantined += other.quarantined;
        self.warnings.extend(other.warnings.iter().cloned());
        self.downgrades += other.downgrades;
        self.resumed |= other.resumed;
        self.checkpoint_saves += other.checkpoint_saves;
        self.spill_shards += other.spill_shards;
        self.spill_bytes += other.spill_bytes;
        self.spill_probes += other.spill_probes;
        self.spill_hits += other.spill_hits;
        self.spill_quarantined += other.spill_quarantined;
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "states: {} (dedup hits: {}, hit-rate {:.1}%)",
            self.states,
            self.dedup_hits,
            100.0 * self.dedup_hit_rate()
        )?;
        writeln!(
            f,
            "transitions: {} (pruned: {}, racy: {}, promises: {})",
            self.transitions, self.pruned, self.racy_steps, self.promise_steps
        )?;
        writeln!(
            f,
            "reduction: {} sleep skips, {} ample commits, {} na / {} read / {} atomic commutes",
            self.sleep_skips,
            self.ample_commits,
            self.na_commutes,
            self.read_commutes,
            self.atomic_commutes
        )?;
        if self.incident_count > 0 || self.quarantined > 0 {
            writeln!(
                f,
                "faults: {} caught ({} recovered by retry, {} states quarantined)",
                self.incident_count, self.retried, self.quarantined
            )?;
        }
        if self.resumed || self.checkpoint_saves > 0 {
            writeln!(
                f,
                "durability: resumed={}, {} checkpoint save(s)",
                self.resumed, self.checkpoint_saves
            )?;
        }
        if self.spill_shards > 0 || self.spill_probes > 0 || self.spill_quarantined > 0 {
            writeln!(
                f,
                "spill: {} shard(s) / {} bytes to disk, {} probes ({} hits), {} quarantined",
                self.spill_shards,
                self.spill_bytes,
                self.spill_probes,
                self.spill_hits,
                self.spill_quarantined
            )?;
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        write!(
            f,
            "workers: {} {:?}, elapsed: {:.3}ms, stop: {}{}{}",
            self.workers,
            self.worker_states,
            self.elapsed.as_secs_f64() * 1e3,
            self.stop,
            if self.truncated { ", TRUNCATED" } else { "" },
            if self.deadline_hit { " (deadline)" } else { "" },
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::error::IncidentKind;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(ExploreStats::default().dedup_hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_and_ors_flags() {
        let mut a = ExploreStats {
            states: 10,
            dedup_hits: 5,
            ..ExploreStats::default()
        };
        let b = ExploreStats {
            states: 3,
            truncated: true,
            stop: StopReason::StateBudget,
            quarantined: 2,
            incident_count: 4,
            ..ExploreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.states, 13);
        assert!(a.truncated);
        assert_eq!(a.stop, StopReason::StateBudget);
        assert_eq!(a.quarantined, 2);
        assert_eq!(a.incident_count, 4);
        assert!(!a.fault_free());
        assert!((a.dedup_hit_rate() - 5.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn merge_caps_recorded_incidents_but_counts_all() {
        let incident = ExploreIncident {
            kind: IncidentKind::ExpansionPanic,
            state_fp: 1,
            depth: 0,
            attempt: 0,
            message: "x".into(),
        };
        let mut a = ExploreStats::default();
        let b = ExploreStats {
            incidents: vec![incident; ExploreStats::MAX_RECORDED_INCIDENTS],
            incident_count: ExploreStats::MAX_RECORDED_INCIDENTS,
            ..ExploreStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.incidents.len(), ExploreStats::MAX_RECORDED_INCIDENTS);
        assert_eq!(a.incident_count, 2 * ExploreStats::MAX_RECORDED_INCIDENTS);
    }

    #[test]
    fn display_mentions_truncation_and_faults() {
        let s = ExploreStats {
            truncated: true,
            incident_count: 3,
            retried: 2,
            quarantined: 1,
            stop: StopReason::DeadlineExpired,
            ..ExploreStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("TRUNCATED"));
        assert!(text.contains("3 caught"));
        assert!(text.contains("deadline expired"));
    }
}
