//! A small, dependency-free, seed-deterministic PRNG (SplitMix64).
//!
//! Used for the engine's random-walk strategy and by the litmus
//! program generator, replacing the external `rand` crate so the whole
//! workspace builds without registry access. SplitMix64 passes BigCrush
//! and is the standard seeder for larger generators; its statistical
//! quality is more than enough for test-case generation.

/// SplitMix64 (Steele, Lea & Flood 2014): a 64-bit state advanced by a
/// Weyl sequence, finalized by a variant of the MurmurHash3 mixer.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio Weyl increment.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Applies the SplitMix64 finalizer to a 64-bit value (also usable as a
/// standalone avalanche mixer, e.g. over raw FxHash output).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// A uniform value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform boolean.
    #[inline]
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `percent`/100.
    #[inline]
    pub fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < percent as usize
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Forks an independent stream (for per-worker / per-walk seeding).
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ mix64(salt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c = SplitMix64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_reference_values() {
        // Reference stream for seed 0 from the published SplitMix64
        // implementation; guards against silent constant typos.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x = r.below(10);
            buckets[x] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i} has {b}");
        }
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::new(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            match r.range_inclusive(1, 3) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                x => panic!("out of range: {x}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(!r.chance(0));
            assert!(r.chance(100));
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut r = SplitMix64::new(9);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
