//! The exploration engine: a parallel, deduplicated, reduction-aware
//! frontier search over any [`TransitionSystem`].
//!
//! # Architecture
//!
//! Workers (plain `std::thread`s) each own a private frontier deque and
//! share a global overflow queue guarded by a `Mutex` + `Condvar`;
//! after expanding a state a worker offloads half its private frontier
//! whenever the global queue runs low, which gives work-stealing
//! behavior without any external dependency. The visited set is
//! sharded by fingerprint (64- or 128-bit, or exact full states) so
//! workers rarely contend on the same shard.
//!
//! # Interleaving reduction
//!
//! Each visited entry stores the minimal *sleep set* (a bitmask of
//! agents whose groups may be skipped) the state was explored with.
//! After expanding agent `i`, agents explored earlier at the same
//! state go to sleep in `i`'s subtree iff both groups are
//! [`shared_pure`](crate::AgentGroup::shared_pure) — two pure groups
//! commute, and a pure step leaves every other agent's group
//! literally unchanged, so the skipped interleaving is covered by the
//! sibling subtree. A state re-reached with a sleep set not covered by
//! the stored one is re-explored with the intersection. Additionally,
//! a [`local`](crate::AgentGroup::local) group (no shared reads *or*
//! writes) whose successors are all unvisited may be selected as a
//! singleton *ample set*: only that agent is expanded at the state.
//! The unvisited-successor proviso prevents the classic "ignoring"
//! cycle: on any cycle in the reduced graph some state sees an
//! already-visited successor (states are marked visited before their
//! children are generated) and falls back to full expansion. Behavior
//! emissions and statistics tags of non-expanded awake groups are
//! still recorded at the state itself, so reduction can only skip
//! *states*, never observations.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::fingerprint::{fp128, fp64};
use crate::rng::{mix64, SplitMix64};
use crate::stats::ExploreStats;
use crate::system::{AgentGroup, Target, TransitionSystem};

/// Search strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive depth-first search (the default; lowest memory).
    Dfs,
    /// Exhaustive breadth-first search (finds shallow behaviors first).
    Bfs,
    /// Restarting DFS with growing depth bounds: `initial`, then
    /// `initial + step`, … up to the configured `max_depth`. Stops
    /// early once a round completes without hitting its depth bound.
    IterativeDeepening {
        /// First depth bound.
        initial: usize,
        /// Bound increment between rounds.
        step: usize,
    },
    /// `walks` seeded uniformly-random maximal paths (no dedup, no
    /// reduction): a cheap smoke-test strategy for huge spaces. The
    /// result is always marked truncated.
    RandomWalk {
        /// Number of walks.
        walks: usize,
        /// PRNG seed; equal seeds give equal walk sets.
        seed: u64,
    },
}

/// How visited states are remembered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VisitedMode {
    /// 64-bit fingerprints (default; ~10⁻⁹ collision odds at 2·10⁵
    /// states).
    Fp64,
    /// 128-bit fingerprints (two independent passes).
    Fp128,
    /// Full state clones — no collisions, seed-explorer equivalent.
    Exact,
}

/// Engine configuration: strategy, budgets, parallelism.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Worker threads (1 = deterministic sequential search).
    pub workers: usize,
    /// Search strategy.
    pub strategy: Strategy,
    /// Visited-set representation.
    pub visited: VisitedMode,
    /// Enable sleep-set / ample-set interleaving reduction.
    pub reduction: bool,
    /// Bound on distinct states expanded (approximate under
    /// parallelism: each worker may overshoot by a few states).
    pub max_states: usize,
    /// Bound on path depth.
    pub max_depth: usize,
    /// Wall-clock deadline; on expiry the search stops where it is.
    pub deadline: Option<Duration>,
    /// Visited-set shard count (power of two recommended).
    pub shards: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            workers: 1,
            strategy: Strategy::Dfs,
            visited: VisitedMode::Fp64,
            reduction: true,
            max_states: 1_000_000,
            max_depth: 1 << 16,
            deadline: None,
            shards: 64,
        }
    }
}

/// An exploration outcome: the behavior set plus structured stats.
#[derive(Clone, Debug)]
pub struct ExploreResult<B: Ord> {
    /// All behaviors observed.
    pub behaviors: BTreeSet<B>,
    /// What the engine did and why it stopped.
    pub stats: ExploreStats,
}

// ---------------------------------------------------------------------------
// Visited set
// ---------------------------------------------------------------------------

enum VisitedImpl<St> {
    Fp64(Vec<Mutex<HashMap<u64, u64>>>),
    Fp128(Vec<Mutex<HashMap<u128, u64>>>),
    Exact(Vec<Mutex<HashMap<St, u64>>>),
}

struct Visited<St> {
    imp: VisitedImpl<St>,
    shards: usize,
}

impl<St: Clone + Eq + std::hash::Hash> Visited<St> {
    fn new(mode: VisitedMode, shards: usize) -> Self {
        let shards = shards.max(1);
        Visited {
            imp: match mode {
                VisitedMode::Fp64 => {
                    VisitedImpl::Fp64((0..shards).map(|_| Mutex::new(HashMap::new())).collect())
                }
                VisitedMode::Fp128 => {
                    VisitedImpl::Fp128((0..shards).map(|_| Mutex::new(HashMap::new())).collect())
                }
                VisitedMode::Exact => {
                    VisitedImpl::Exact((0..shards).map(|_| Mutex::new(HashMap::new())).collect())
                }
            },
            shards,
        }
    }

    fn shard_of(&self, fp: u64) -> usize {
        (fp % self.shards as u64) as usize
    }

    /// Records a visit of `st` with sleep mask `mask`. Returns the
    /// mask to explore with, or `None` if a previous visit covers it.
    fn check_insert(&self, st: &St, mask: u64) -> Option<u64> {
        fn upd<K: Eq + std::hash::Hash>(map: &mut HashMap<K, u64>, k: K, mask: u64) -> Option<u64> {
            match map.entry(k) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(mask);
                    Some(mask)
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let old = *o.get();
                    if old & !mask == 0 {
                        None
                    } else {
                        let m = old & mask;
                        o.insert(m);
                        Some(m)
                    }
                }
            }
        }
        let f = fp64(st);
        let shard = self.shard_of(f);
        match &self.imp {
            VisitedImpl::Fp64(s) => upd(&mut s[shard].lock().expect("visited shard"), f, mask),
            VisitedImpl::Fp128(s) => upd(
                &mut s[shard].lock().expect("visited shard"),
                fp128(st),
                mask,
            ),
            VisitedImpl::Exact(s) => upd(
                &mut s[shard].lock().expect("visited shard"),
                st.clone(),
                mask,
            ),
        }
    }

    /// Has `st` been visited (with any sleep mask)? Used by the ample
    /// proviso; a false negative only costs reduction, a false
    /// positive only costs exploration work.
    fn contains(&self, st: &St) -> bool {
        let f = fp64(st);
        let shard = self.shard_of(f);
        match &self.imp {
            VisitedImpl::Fp64(s) => s[shard].lock().expect("visited shard").contains_key(&f),
            VisitedImpl::Fp128(s) => s[shard]
                .lock()
                .expect("visited shard")
                .contains_key(&fp128(st)),
            VisitedImpl::Exact(s) => s[shard].lock().expect("visited shard").contains_key(st),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared engine state
// ---------------------------------------------------------------------------

type Job<St> = (St, usize, u64);

struct Shared<'a, S: TransitionSystem> {
    sys: &'a S,
    cfg: &'a ExploreConfig,
    visited: Visited<S::State>,
    queue: Mutex<VecDeque<Job<S::State>>>,
    cv: Condvar,
    /// Jobs created but not yet fully processed.
    pending: AtomicUsize,
    /// Hard stop (deadline): abandon the frontier.
    stop: AtomicBool,
    /// Soft stop (state budget): drain the frontier for terminal
    /// behaviors without expanding further — the seed explorer's
    /// off-by-one dropped these.
    drain: AtomicBool,
    /// The depth bound hit at least once (drives iterative deepening).
    depth_truncated: AtomicBool,
    states_total: AtomicUsize,
    behaviors: Mutex<BTreeSet<S::Behavior>>,
    depth_limit: usize,
    start: Instant,
}

impl<'a, S: TransitionSystem> Shared<'a, S> {
    fn deadline_expired(&self) -> bool {
        match self.cfg.deadline {
            Some(d) => self.start.elapsed() >= d,
            None => false,
        }
    }
}

fn pop_local<St>(local: &mut VecDeque<Job<St>>, strategy: &Strategy) -> Option<Job<St>> {
    match strategy {
        Strategy::Bfs => local.pop_front(),
        _ => local.pop_back(),
    }
}

fn next_job<S: TransitionSystem>(
    sh: &Shared<S>,
    local: &mut VecDeque<Job<S::State>>,
) -> Option<Job<S::State>> {
    if sh.stop.load(Ordering::SeqCst) {
        return None;
    }
    if let Some(j) = pop_local(local, &sh.cfg.strategy) {
        return Some(j);
    }
    let mut q = sh.queue.lock().expect("frontier queue");
    loop {
        if sh.stop.load(Ordering::SeqCst) {
            return None;
        }
        if sh.deadline_expired() {
            sh.stop.store(true, Ordering::SeqCst);
            sh.cv.notify_all();
            return None;
        }
        if let Some(j) = q.pop_front() {
            return Some(j);
        }
        if sh.pending.load(Ordering::SeqCst) == 0 {
            return None;
        }
        // Timed wait so deadline expiry and missed notifications
        // self-heal.
        q = sh
            .cv
            .wait_timeout(q, Duration::from_millis(5))
            .expect("frontier queue")
            .0;
    }
}

/// Expands one frontier entry.
fn process<S: TransitionSystem>(
    sh: &Shared<S>,
    (st, depth, sleep): Job<S::State>,
    local: &mut VecDeque<Job<S::State>>,
    stats: &mut ExploreStats,
) {
    let sleep_in = if sh.cfg.reduction { sleep } else { 0 };
    let sleep = match sh.visited.check_insert(&st, sleep_in) {
        None => {
            stats.dedup_hits += 1;
            return;
        }
        Some(m) => m,
    };
    if sh.drain.load(Ordering::Relaxed) {
        // State budget exhausted: collect terminals on the remaining
        // frontier, expand nothing.
        if let Some(b) = sh.sys.terminal_behavior(&st) {
            sh.behaviors.lock().expect("behavior set").insert(b);
        }
        return;
    }
    stats.states += 1;
    let n = sh.states_total.fetch_add(1, Ordering::Relaxed) + 1;
    let capped = n >= sh.cfg.max_states;
    if capped {
        sh.drain.store(true, Ordering::Relaxed);
        stats.truncated = true;
    }
    if let Some(b) = sh.sys.terminal_behavior(&st) {
        sh.behaviors.lock().expect("behavior set").insert(b);
        return;
    }
    if capped {
        return;
    }
    if depth >= sh.depth_limit {
        stats.truncated = true;
        sh.depth_truncated.store(true, Ordering::Relaxed);
        return;
    }

    let groups = sh.sys.agent_groups(&st);
    let mut awake: Vec<&AgentGroup<S::State, S::Behavior>> = Vec::with_capacity(groups.len());
    for g in &groups {
        if sh.cfg.reduction && g.agent < 64 && sleep & (1 << g.agent) != 0 {
            stats.sleep_skips += 1;
        } else {
            awake.push(g);
        }
    }

    // Record emissions and statistics tags of every awake group — even
    // ones the ample selection below will not expand.
    let mut emitted: Vec<S::Behavior> = Vec::new();
    for g in &awake {
        for t in &g.transitions {
            stats.transitions += 1;
            if t.tags.racy {
                stats.racy_steps += 1;
            }
            if t.tags.promise {
                stats.promise_steps += 1;
            }
            match &t.target {
                Target::Behavior(b) => emitted.push(b.clone()),
                Target::Pruned => stats.pruned += 1,
                Target::State(_) => {}
            }
        }
    }
    if !emitted.is_empty() {
        sh.behaviors.lock().expect("behavior set").extend(emitted);
    }

    let mut to_push: Vec<Job<S::State>> = Vec::new();
    let ample = if sh.cfg.reduction && awake.len() > 1 {
        awake.iter().find(|g| {
            g.local
                && !g.transitions.is_empty()
                && g.transitions.iter().all(|t| match &t.target {
                    Target::State(s) => !sh.visited.contains(s),
                    _ => false,
                })
        })
    } else {
        None
    };
    if let Some(g) = ample {
        stats.ample_commits += 1;
        for t in &g.transitions {
            if let Target::State(s) = &t.target {
                // A local step is pure, so the sleep set survives it.
                to_push.push((s.clone(), depth + 1, sleep));
            }
        }
    } else {
        let mut earlier_pure: u64 = 0;
        for g in &awake {
            let child_sleep = if sh.cfg.reduction && g.shared_pure {
                sleep | earlier_pure
            } else {
                0
            };
            for t in &g.transitions {
                if let Target::State(s) = &t.target {
                    to_push.push((s.clone(), depth + 1, child_sleep));
                }
            }
            if g.shared_pure && g.agent < 64 {
                earlier_pure |= 1 << g.agent;
            }
        }
    }

    if to_push.is_empty() {
        return;
    }
    sh.pending.fetch_add(to_push.len(), Ordering::SeqCst);
    local.extend(to_push);
    // Offload half the private frontier whenever the shared queue runs
    // low — cheap cooperative work-stealing.
    if sh.cfg.workers > 1 && local.len() > 1 {
        let mut q = sh.queue.lock().expect("frontier queue");
        if q.len() < sh.cfg.workers * 2 {
            let give = local.len() / 2;
            for _ in 0..give {
                if let Some(j) = local.pop_front() {
                    q.push_back(j);
                }
            }
            drop(q);
            sh.cv.notify_all();
        }
    }
}

fn worker_loop<S: TransitionSystem>(sh: &Shared<S>, stats: &mut ExploreStats) {
    let mut local: VecDeque<Job<S::State>> = VecDeque::new();
    while let Some(job) = next_job(sh, &mut local) {
        process(sh, job, &mut local, stats);
        if sh.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            sh.cv.notify_all();
        }
    }
}

/// One exhaustive round (DFS/BFS/one deepening step) at a fixed depth
/// limit, accumulating into `behaviors` and `stats`.
fn run_round<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    depth_limit: usize,
    start: Instant,
    behaviors: BTreeSet<S::Behavior>,
    stats: &mut ExploreStats,
) -> (BTreeSet<S::Behavior>, bool) {
    let sh = Shared {
        sys,
        cfg,
        visited: Visited::new(cfg.visited, cfg.shards),
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        pending: AtomicUsize::new(1),
        stop: AtomicBool::new(false),
        drain: AtomicBool::new(false),
        depth_truncated: AtomicBool::new(false),
        states_total: AtomicUsize::new(0),
        behaviors: Mutex::new(behaviors),
        depth_limit,
        start,
    };
    sh.queue
        .lock()
        .expect("frontier queue")
        .push_back((sys.initial_state(), 0, 0));

    let workers = cfg.workers.max(1);
    let mut per_worker: Vec<ExploreStats> = (0..workers).map(|_| ExploreStats::default()).collect();
    if workers == 1 {
        worker_loop(&sh, &mut per_worker[0]);
    } else {
        std::thread::scope(|scope| {
            for ws in per_worker.iter_mut() {
                scope.spawn(|| worker_loop(&sh, ws));
            }
        });
    }

    for ws in &per_worker {
        stats.merge(ws);
        stats.worker_states.push(ws.states);
    }
    if sh.stop.load(Ordering::SeqCst) {
        stats.truncated = true;
        stats.deadline_hit = true;
    }
    let depth_hit = sh.depth_truncated.load(Ordering::SeqCst);
    let behaviors = sh.behaviors.into_inner().expect("behavior set");
    (behaviors, depth_hit)
}

fn run_random_walks<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    walks: usize,
    seed: u64,
    start: Instant,
) -> ExploreResult<S::Behavior> {
    let mut behaviors: BTreeSet<S::Behavior> = BTreeSet::new();
    let mut stats = ExploreStats {
        workers: cfg.workers.max(1),
        // Walks revisit states freely; exhaustiveness is not the goal.
        truncated: true,
        ..ExploreStats::default()
    };
    'walks: for w in 0..walks {
        let mut rng = SplitMix64::new(seed ^ mix64(w as u64 + 1));
        let mut st = sys.initial_state();
        for _ in 0..cfg.max_depth {
            if cfg.deadline.is_some_and(|d| start.elapsed() >= d) {
                stats.deadline_hit = true;
                break 'walks;
            }
            if let Some(b) = sys.terminal_behavior(&st) {
                behaviors.insert(b);
                break;
            }
            stats.states += 1;
            let mut succs: Vec<S::State> = Vec::new();
            let groups = sys.agent_groups(&st);
            for g in &groups {
                for t in &g.transitions {
                    stats.transitions += 1;
                    if t.tags.racy {
                        stats.racy_steps += 1;
                    }
                    if t.tags.promise {
                        stats.promise_steps += 1;
                    }
                    match &t.target {
                        Target::Behavior(b) => {
                            behaviors.insert(b.clone());
                        }
                        Target::Pruned => stats.pruned += 1,
                        Target::State(s) => succs.push(s.clone()),
                    }
                }
            }
            if succs.is_empty() {
                break;
            }
            st = succs[rng.below(succs.len())].clone();
        }
    }
    stats.elapsed = start.elapsed();
    ExploreResult { behaviors, stats }
}

/// Explores `sys` under `cfg`, returning the behavior set and stats.
pub fn explore<S: TransitionSystem>(sys: &S, cfg: &ExploreConfig) -> ExploreResult<S::Behavior> {
    let start = Instant::now();
    match cfg.strategy.clone() {
        Strategy::Dfs | Strategy::Bfs => {
            let mut stats = ExploreStats {
                workers: cfg.workers.max(1),
                ..ExploreStats::default()
            };
            let (behaviors, _) =
                run_round(sys, cfg, cfg.max_depth, start, BTreeSet::new(), &mut stats);
            stats.elapsed = start.elapsed();
            ExploreResult { behaviors, stats }
        }
        Strategy::IterativeDeepening { initial, step } => {
            let mut stats = ExploreStats {
                workers: cfg.workers.max(1),
                ..ExploreStats::default()
            };
            let mut behaviors = BTreeSet::new();
            let mut limit = initial.max(1).min(cfg.max_depth);
            loop {
                stats.truncated = false;
                let (b, depth_hit) = run_round(sys, cfg, limit, start, behaviors, &mut stats);
                behaviors = b;
                if !depth_hit || limit >= cfg.max_depth || stats.deadline_hit {
                    break;
                }
                limit = limit.saturating_add(step.max(1)).min(cfg.max_depth);
            }
            stats.elapsed = start.elapsed();
            ExploreResult { behaviors, stats }
        }
        Strategy::RandomWalk { walks, seed } => run_random_walks(sys, cfg, walks, seed, start),
    }
}

// Internal marker so the unused helper above never bitrots silently.
#[allow(dead_code)]
fn _assert_send_sync<T: Send + Sync>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{StepTags, Transition};

    /// N agents, each incrementing a private counter to `limit`. All
    /// steps are local, so ample reduction collapses the interleaving
    /// product (limit+1)^N to a single line per agent.
    struct Counters {
        agents: usize,
        limit: u8,
    }

    impl TransitionSystem for Counters {
        type State = Vec<u8>;
        type Behavior = Vec<u8>;

        fn initial_state(&self) -> Vec<u8> {
            vec![0; self.agents]
        }

        fn agent_groups(&self, st: &Vec<u8>) -> Vec<AgentGroup<Vec<u8>, Vec<u8>>> {
            (0..self.agents)
                .filter(|&i| st[i] < self.limit)
                .map(|i| {
                    let mut next = st.clone();
                    next[i] += 1;
                    AgentGroup {
                        agent: i,
                        transitions: vec![Transition::state(next)],
                        shared_pure: true,
                        local: true,
                    }
                })
                .collect()
        }

        fn terminal_behavior(&self, st: &Vec<u8>) -> Option<Vec<u8>> {
            st.iter().all(|&c| c == self.limit).then(|| st.clone())
        }
    }

    /// Two agents racing on one shared cell: agent 0 reads it (pure
    /// but NOT local), agent 1 writes 1 (neither). The behavior set
    /// {(0,·),(1,·)} must survive reduction — this is exactly the
    /// read-vs-write case where treating a pure read as ample-able
    /// would lose a behavior.
    struct ReadVsWrite;

    /// State: (agent0 result or 255, agent1 done, cell).
    impl TransitionSystem for ReadVsWrite {
        type State = (u8, bool, u8);
        type Behavior = (u8, u8);

        fn initial_state(&self) -> Self::State {
            (255, false, 0)
        }

        fn agent_groups(&self, st: &Self::State) -> Vec<AgentGroup<Self::State, Self::Behavior>> {
            let mut out = Vec::new();
            if st.0 == 255 {
                out.push(AgentGroup {
                    agent: 0,
                    transitions: vec![Transition::state((st.2, st.1, st.2))],
                    shared_pure: true,
                    local: false,
                });
            }
            if !st.1 {
                out.push(AgentGroup {
                    agent: 1,
                    transitions: vec![Transition::state((st.0, true, 1))],
                    shared_pure: false,
                    local: false,
                });
            }
            out
        }

        fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior> {
            (st.0 != 255 && st.1).then_some((st.0, st.2))
        }
    }

    /// A chain emitting a tagged behavior halfway: checks emission
    /// collection and tag counting.
    struct EmitChain;

    impl TransitionSystem for EmitChain {
        type State = u8;
        type Behavior = &'static str;

        fn initial_state(&self) -> u8 {
            0
        }

        fn agent_groups(&self, st: &u8) -> Vec<AgentGroup<u8, &'static str>> {
            if *st >= 3 {
                return vec![];
            }
            let mut transitions = vec![Transition::state(st + 1)];
            if *st == 1 {
                transitions.push(Transition {
                    target: Target::Behavior("ub"),
                    tags: StepTags {
                        racy: true,
                        promise: false,
                    },
                });
                transitions.push(Transition {
                    target: Target::Pruned,
                    tags: StepTags {
                        racy: false,
                        promise: true,
                    },
                });
            }
            vec![AgentGroup {
                agent: 0,
                transitions,
                shared_pure: false,
                local: false,
            }]
        }

        fn terminal_behavior(&self, st: &u8) -> Option<&'static str> {
            (*st == 3).then_some("done")
        }
    }

    fn cfg(workers: usize, reduction: bool) -> ExploreConfig {
        ExploreConfig {
            workers,
            reduction,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn counters_single_behavior_all_modes() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want: BTreeSet<Vec<u8>> = [vec![3, 3, 3]].into_iter().collect();
        for workers in [1, 2, 4] {
            for reduction in [false, true] {
                let r = explore(&sys, &cfg(workers, reduction));
                assert_eq!(r.behaviors, want, "workers={workers} reduction={reduction}");
                assert!(!r.stats.truncated);
            }
        }
    }

    #[test]
    fn ample_reduction_collapses_independent_agents() {
        let sys = Counters {
            agents: 4,
            limit: 3,
        };
        let full = explore(&sys, &cfg(1, false));
        let reduced = explore(&sys, &cfg(1, true));
        assert_eq!(full.behaviors, reduced.behaviors);
        // Full product: 4^4 = 256 states. Reduced: one agent at a time
        // → 13 states. Any measurable reduction proves the machinery.
        assert_eq!(full.stats.states, 256);
        assert!(
            reduced.stats.states * 4 < full.stats.states,
            "reduced {} vs full {}",
            reduced.stats.states,
            full.stats.states
        );
        assert!(reduced.stats.ample_commits > 0);
    }

    #[test]
    fn reduction_keeps_read_write_race_behaviors() {
        let want: BTreeSet<(u8, u8)> = [(0, 1), (1, 1)].into_iter().collect();
        for workers in [1, 4] {
            for reduction in [false, true] {
                let r = explore(&ReadVsWrite, &cfg(workers, reduction));
                assert_eq!(r.behaviors, want, "workers={workers} reduction={reduction}");
            }
        }
    }

    #[test]
    fn emissions_and_tags_are_counted() {
        let r = explore(&EmitChain, &cfg(1, false));
        let want: BTreeSet<&str> = ["ub", "done"].into_iter().collect();
        assert_eq!(r.behaviors, want);
        assert_eq!(r.stats.racy_steps, 1);
        assert_eq!(r.stats.promise_steps, 1);
        assert_eq!(r.stats.pruned, 1);
        assert_eq!(r.stats.states, 4);
    }

    #[test]
    fn state_budget_drains_frontier_terminals() {
        // A 2-wide diamond: budget of 2 stops after expanding the root
        // and one branch, but the other branch's terminal must still
        // be collected by the drain pass.
        struct Diamond;
        impl TransitionSystem for Diamond {
            type State = u8;
            type Behavior = u8;
            fn initial_state(&self) -> u8 {
                0
            }
            fn agent_groups(&self, st: &u8) -> Vec<AgentGroup<u8, u8>> {
                if *st == 0 {
                    vec![AgentGroup {
                        agent: 0,
                        transitions: vec![Transition::state(1), Transition::state(2)],
                        shared_pure: false,
                        local: false,
                    }]
                } else {
                    vec![]
                }
            }
            fn terminal_behavior(&self, st: &u8) -> Option<u8> {
                (*st > 0).then_some(*st)
            }
        }
        let r = explore(
            &Diamond,
            &ExploreConfig {
                max_states: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(r.stats.truncated);
        let want: BTreeSet<u8> = [1, 2].into_iter().collect();
        assert_eq!(r.behaviors, want, "frontier terminals were dropped");
    }

    #[test]
    fn bfs_and_iterative_deepening_agree_with_dfs() {
        let sys = Counters {
            agents: 2,
            limit: 4,
        };
        let dfs = explore(&sys, &cfg(1, true));
        for strategy in [
            Strategy::Bfs,
            Strategy::IterativeDeepening {
                initial: 2,
                step: 2,
            },
        ] {
            let r = explore(
                &sys,
                &ExploreConfig {
                    strategy: strategy.clone(),
                    ..cfg(2, true)
                },
            );
            assert_eq!(r.behaviors, dfs.behaviors, "{strategy:?}");
            assert!(!r.stats.truncated, "{strategy:?}");
        }
    }

    #[test]
    fn random_walks_reach_the_terminal() {
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                strategy: Strategy::RandomWalk {
                    walks: 8,
                    seed: 0xDECAF,
                },
                ..ExploreConfig::default()
            },
        );
        assert!(r.behaviors.contains(&vec![2, 2]));
        assert!(r.stats.truncated, "walks are never exhaustive");
    }

    #[test]
    fn visited_modes_agree() {
        let sys = Counters {
            agents: 3,
            limit: 2,
        };
        let base = explore(&sys, &cfg(1, true));
        for mode in [VisitedMode::Fp128, VisitedMode::Exact] {
            let r = explore(
                &sys,
                &ExploreConfig {
                    visited: mode,
                    ..cfg(1, true)
                },
            );
            assert_eq!(r.behaviors, base.behaviors, "{mode:?}");
            assert_eq!(r.stats.states, base.stats.states, "{mode:?}");
        }
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                deadline: Some(Duration::ZERO),
                workers: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(r.stats.deadline_hit);
        assert!(r.stats.truncated);
    }

    #[test]
    fn depth_bound_truncates() {
        let sys = Counters {
            agents: 1,
            limit: 10,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                max_depth: 3,
                ..ExploreConfig::default()
            },
        );
        assert!(r.stats.truncated);
        assert!(r.behaviors.is_empty());
    }

    #[test]
    fn worker_stats_cover_all_states() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let r = explore(&sys, &cfg(4, false));
        assert_eq!(r.stats.worker_states.len(), 4);
        assert_eq!(r.stats.worker_states.iter().sum::<usize>(), r.stats.states);
    }
}
