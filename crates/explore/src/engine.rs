//! The exploration engine: a parallel, deduplicated, reduction-aware
//! frontier search over any [`TransitionSystem`].
//!
//! # Architecture
//!
//! Workers (plain `std::thread`s) each own a private frontier deque and
//! share a global overflow queue guarded by a `Mutex` + `Condvar`;
//! after expanding a state a worker offloads half its private frontier
//! whenever the global queue runs low, which gives work-stealing
//! behavior without any external dependency. The visited set is
//! sharded by fingerprint (64- or 128-bit, or exact full states) so
//! workers rarely contend on the same shard.
//!
//! # Interleaving reduction
//!
//! Each visited entry stores the minimal *sleep set* (a bitmask of
//! agents whose groups may be skipped) the state was explored with.
//! After expanding agent `i`, agents explored earlier at the same
//! state go to sleep in `i`'s subtree iff both groups are
//! [`shared_pure`](crate::AgentGroup::shared_pure) — two pure groups
//! commute, and a pure step leaves every other agent's group
//! literally unchanged, so the skipped interleaving is covered by the
//! sibling subtree. A state re-reached with a sleep set not covered by
//! the stored one is re-explored with the intersection. Additionally,
//! a [`local`](crate::AgentGroup::local) group (no shared reads *or*
//! writes) whose successors are all unvisited may be selected as a
//! singleton *ample set*: only that agent is expanded at the state.
//! The unvisited-successor proviso prevents the classic "ignoring"
//! cycle: on any cycle in the reduced graph some state sees an
//! already-visited successor (states are marked visited before their
//! children are generated) and falls back to full expansion. Behavior
//! emissions and statistics tags of non-expanded awake groups are
//! still recorded at the state itself, so reduction can only skip
//! *states*, never observations.
//!
//! # Failure model
//!
//! Transition-system callbacks are user code and may panic. Every
//! callback runs under `catch_unwind`: a panic while *inserting* into
//! the visited set quarantines the state immediately (its dedup
//! status is unknowable), a panic while *expanding* is retried up to
//! [`ExploreConfig::max_retries`] times and then quarantined. Either
//! way the incident is recorded in [`ExploreStats`] and the rest of
//! the frontier keeps draining — one poisoned state never takes down
//! the search. All engine locks are acquired poison-insensitively,
//! and expansion buffers its effects so a retry is idempotent.
//!
//! Long runs can opt into durability with
//! [`ExploreConfig::checkpoint`] / [`ExploreConfig::resume`]: the
//! frontier and behavior set are periodically written to disk as
//! replayable transition paths (see [`crate::CHECKPOINT_VERSION`]),
//! and budget trips *stop* the search (preserving the frontier for
//! resume) instead of draining it. A memory budget
//! ([`ExploreConfig::max_memory`]) degrades the visited set
//! exact → fp128 → fp64 before giving up.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::checkpoint::{
    self, CheckpointData, SavedBehavior, SavedCounters, SavedJob, LEVEL_FP128, LEVEL_FP64,
};
use crate::error::{
    CorruptReason, ExploreError, ExploreIncident, ExploreWarning, IncidentKind, StopReason,
};
use crate::fingerprint::{fp128, fp64};
use crate::rng::{mix64, SplitMix64};
use crate::spill::{FrontierLoad, SpillSeg, SpillSpec, SpillStore};
use crate::stats::ExploreStats;
use crate::system::{groups_independent, Target, TransitionSystem};

/// Search strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive depth-first search (the default; lowest memory).
    Dfs,
    /// Exhaustive breadth-first search (finds shallow behaviors first).
    Bfs,
    /// Restarting DFS with growing depth bounds: `initial`, then
    /// `initial + step`, … up to the configured `max_depth`. Stops
    /// early once a round completes without hitting its depth bound.
    IterativeDeepening {
        /// First depth bound.
        initial: usize,
        /// Bound increment between rounds.
        step: usize,
    },
    /// `walks` seeded uniformly-random maximal paths (no dedup, no
    /// reduction): a cheap smoke-test strategy for huge spaces. The
    /// result is always marked truncated.
    RandomWalk {
        /// Number of walks.
        walks: usize,
        /// PRNG seed; equal seeds give equal walk sets.
        seed: u64,
    },
}

/// How visited states are remembered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VisitedMode {
    /// 64-bit fingerprints (default; ~10⁻⁹ collision odds at 2·10⁵
    /// states).
    Fp64,
    /// 128-bit fingerprints (two independent passes).
    Fp128,
    /// Full state clones — no collisions, seed-explorer equivalent.
    Exact,
}

/// Where and how often to checkpoint a durable run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file (written atomically via `<path>.tmp` + rename).
    pub path: PathBuf,
    /// Save period. `None` saves only once, when the run stops;
    /// periodic saves additionally require `workers == 1` (a parallel
    /// frontier has no consistent mid-run snapshot).
    pub every: Option<Duration>,
}

impl CheckpointSpec {
    /// A spec that saves once, when the run stops.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            every: None,
        }
    }

    /// Adds a periodic save interval.
    pub fn every(mut self, period: Duration) -> Self {
        self.every = Some(period);
        self
    }
}

/// Engine configuration: strategy, budgets, parallelism, durability.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Worker threads (1 = deterministic sequential search).
    pub workers: usize,
    /// Search strategy.
    pub strategy: Strategy,
    /// Visited-set representation.
    pub visited: VisitedMode,
    /// Enable sleep-set / ample-set interleaving reduction (master
    /// switch; `false` overrides every toggle in [`Self::rules`]).
    pub reduction: bool,
    /// Fine-grained per-rule reduction toggles, consulted only when
    /// [`Self::reduction`] is on. Lets the soundness suite falsify
    /// each independence rule in isolation.
    pub rules: ReductionRules,
    /// Bound on distinct states expanded (approximate under
    /// parallelism: each worker may overshoot by a few states).
    pub max_states: usize,
    /// Bound on path depth.
    pub max_depth: usize,
    /// Wall-clock deadline; on expiry the search stops where it is.
    pub deadline: Option<Duration>,
    /// Visited-set shard count (power of two recommended).
    pub shards: usize,
    /// Approximate visited-set memory budget in bytes. On breach the
    /// representation degrades one rung (exact → fp128 → fp64); out of
    /// rungs, the search stops (durable runs) or drains (others).
    pub max_memory: Option<usize>,
    /// How many times a panicking expansion is retried before its
    /// state is quarantined.
    pub max_retries: u8,
    /// Periodically checkpoint the run to disk (DFS/BFS only).
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from a previous checkpoint. An unreadable or corrupt
    /// file falls back to a fresh run with a warning.
    pub resume: Option<PathBuf>,
    /// Spill cold visited-set shards (and single-worker DFS frontier
    /// segments) to disk under memory pressure, *before* the lossy
    /// exact → fp128 → fp64 ladder is consulted (DFS/BFS only). Disk
    /// failures fall back to the in-RAM ladder; corrupt segments are
    /// quarantined and read as unvisited.
    pub spill: Option<SpillSpec>,
    /// Deterministic fault schedule for hardening tests.
    #[cfg(feature = "fault-injection")]
    pub fault: Option<crate::fault::FaultPlan>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            workers: 1,
            strategy: Strategy::Dfs,
            visited: VisitedMode::Fp64,
            reduction: true,
            rules: ReductionRules::default(),
            max_states: 1_000_000,
            max_depth: 1 << 16,
            deadline: None,
            shards: 64,
            max_memory: None,
            max_retries: 1,
            checkpoint: None,
            resume: None,
            spill: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }
}

/// Per-rule toggles for the interleaving reduction, all on by
/// default. Each flag disables exactly one lever so the soundness
/// battery (`tests/por_soundness.rs`) can assert behavior-set
/// equality with every subset of rules active — an unsound rule is
/// then independently falsifiable instead of being masked by the
/// others.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionRules {
    /// Honor sleep sets at all (skipping sleeping agents, propagating
    /// sleep masks to children). Off, no independence rule can fire.
    pub sleep: bool,
    /// Commit singleton ample sets on `local` groups.
    pub ample: bool,
    /// Grant sleep bits via the NA-write rule
    /// ([`crate::IndependenceRule::NaWrite`]).
    pub na_write: bool,
    /// Grant sleep bits via the read/read and read-vs-write rule
    /// ([`crate::IndependenceRule::Read`]).
    pub shared_read: bool,
    /// Grant sleep bits via the atomic-write rule
    /// ([`crate::IndependenceRule::AtomicWrite`]).
    pub atomic_write: bool,
}

impl Default for ReductionRules {
    fn default() -> Self {
        ReductionRules {
            sleep: true,
            ample: true,
            na_write: true,
            shared_read: true,
            atomic_write: true,
        }
    }
}

impl ReductionRules {
    /// Whether sleep bits may be granted through `rule`.
    pub fn allows(&self, rule: crate::IndependenceRule) -> bool {
        use crate::IndependenceRule::*;
        match rule {
            Dependent => false,
            Pure => true,
            Read => self.shared_read,
            NaWrite => self.na_write,
            AtomicWrite => self.atomic_write,
        }
    }
}

/// An exploration outcome: the behavior set plus structured stats.
#[derive(Clone, Debug)]
pub struct ExploreResult<B: Ord> {
    /// All behaviors observed.
    pub behaviors: BTreeSet<B>,
    /// What the engine did and why it stopped.
    pub stats: ExploreStats,
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Workers buffer their effects and apply them only on success, so a
/// poisoned lock's data is still consistent.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return s.clone();
    }
    #[cfg(feature = "fault-injection")]
    if let Some(f) = p.downcast_ref::<crate::fault::InjectedFault>() {
        return format!(
            "injected fault at state {:016x} (permanent: {})",
            f.state_fp, f.permanent
        );
    }
    "non-string panic payload".to_string()
}

// ---------------------------------------------------------------------------
// Visited set with a degradation ladder
// ---------------------------------------------------------------------------

const LEVEL_EXACT: u8 = 0;

fn level_name(level: u8) -> &'static str {
    match level {
        LEVEL_EXACT => "exact",
        LEVEL_FP128 => "fp128",
        _ => "fp64",
    }
}

fn mode_level(mode: VisitedMode) -> u8 {
    match mode {
        VisitedMode::Exact => LEVEL_EXACT,
        VisitedMode::Fp128 => LEVEL_FP128,
        VisitedMode::Fp64 => LEVEL_FP64,
    }
}

/// One shard of the visited set. The variant *is* the shard's current
/// rung on the degradation ladder; shards migrate lazily toward the
/// global level the next time they are locked for insertion. The low
/// 64 bits of an fp128 fingerprint equal the state's fp64, so each
/// downgrade is a pure key projection.
enum ShardMap<St> {
    Exact(HashMap<St, u64>),
    Fp128(HashMap<u128, u64>),
    Fp64(HashMap<u64, u64>),
}

impl<St: Clone + Eq + std::hash::Hash> ShardMap<St> {
    fn level(&self) -> u8 {
        match self {
            ShardMap::Exact(_) => LEVEL_EXACT,
            ShardMap::Fp128(_) => LEVEL_FP128,
            ShardMap::Fp64(_) => LEVEL_FP64,
        }
    }

    fn len(&self) -> usize {
        match self {
            ShardMap::Exact(m) => m.len(),
            ShardMap::Fp128(m) => m.len(),
            ShardMap::Fp64(m) => m.len(),
        }
    }

    /// Migrates this shard one rung down, merging colliding entries by
    /// sleep-mask intersection (the sound direction: a smaller mask
    /// only re-explores more).
    fn degrade_once(self) -> ShardMap<St> {
        fn merge<K: Eq + std::hash::Hash>(map: &mut HashMap<K, u64>, k: K, mask: u64) {
            map.entry(k).and_modify(|m| *m &= mask).or_insert(mask);
        }
        match self {
            ShardMap::Exact(m) => {
                let mut out = HashMap::with_capacity(m.len());
                for (st, mask) in m {
                    merge(&mut out, fp128(&st), mask);
                }
                ShardMap::Fp128(out)
            }
            ShardMap::Fp128(m) => {
                let mut out = HashMap::with_capacity(m.len());
                for (fp, mask) in m {
                    merge(&mut out, fp as u64, mask);
                }
                ShardMap::Fp64(out)
            }
            same @ ShardMap::Fp64(_) => same,
        }
    }
}

/// Disk-representable visited dump: (level, fp64 pairs, fp128 pairs).
type VisitedSnapshot = (u8, Vec<(u64, u64)>, Vec<(u128, u64)>);

struct Visited<St> {
    shards: Vec<Mutex<ShardMap<St>>>,
    /// Global ladder rung; shards at a lower (more precise) rung
    /// migrate lazily on their next insertion.
    level: AtomicU8,
    /// Approximate entry count (drives the memory estimate; spilled
    /// entries stop counting — they no longer occupy RAM).
    entries: AtomicUsize,
    /// Disk spill store, when configured. Lock order: a shard's mutex
    /// is always taken before the store's per-shard segment list.
    spill: Option<SpillStore>,
}

impl<St: Clone + Eq + std::hash::Hash> Visited<St> {
    fn new(mode: VisitedMode, shards: usize) -> Self {
        let level = mode_level(mode);
        Visited {
            shards: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(match level {
                        LEVEL_EXACT => ShardMap::Exact(HashMap::new()),
                        LEVEL_FP128 => ShardMap::Fp128(HashMap::new()),
                        _ => ShardMap::Fp64(HashMap::new()),
                    })
                })
                .collect(),
            level: AtomicU8::new(level),
            entries: AtomicUsize::new(0),
            spill: None,
        }
    }

    fn shard_of(&self, fp: u64) -> usize {
        (fp % self.shards.len() as u64) as usize
    }

    fn sync_shard(&self, g: &mut ShardMap<St>, target: u8) {
        while g.level() < target {
            let old_len = g.len();
            let taken = std::mem::replace(g, ShardMap::Fp64(HashMap::new()));
            *g = taken.degrade_once();
            // Degrading is a key projection: it can merge colliding
            // pairs (mask intersection) but never invent entries.
            debug_assert!(
                g.len() <= old_len,
                "degrade_once grew a shard: {} -> {}",
                old_len,
                g.len()
            );
            self.entries.fetch_sub(old_len - g.len(), Ordering::Relaxed);
        }
    }

    /// Records a visit of `st` with sleep mask `mask`. Returns the
    /// mask to explore with, or `None` if a previous visit covers it.
    ///
    /// When the entry is RAM-vacant, any spilled segments of its shard
    /// are probed first; a disk hit re-adopts the (tightest) disk mask
    /// into RAM, so the decision is identical to the one an in-RAM run
    /// would have made at that point. The re-adopted RAM mask is always
    /// a subset of every on-disk mask for the same key, which keeps the
    /// covering test sound across repeated spills.
    fn check_insert(&self, st: &St, mask: u64) -> Option<u64> {
        fn upd<K: Eq + std::hash::Hash>(
            map: &mut HashMap<K, u64>,
            k: K,
            mask: u64,
            disk: Option<u64>,
        ) -> (Option<u64>, bool) {
            match map.entry(k) {
                std::collections::hash_map::Entry::Vacant(v) => match disk {
                    Some(old) if old & !mask == 0 => {
                        v.insert(old);
                        (None, true)
                    }
                    Some(old) => {
                        let m = old & mask;
                        v.insert(m);
                        (Some(m), true)
                    }
                    None => {
                        v.insert(mask);
                        (Some(mask), true)
                    }
                },
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let old = *o.get();
                    if old & !mask == 0 {
                        (None, false)
                    } else {
                        let m = old & mask;
                        o.insert(m);
                        (Some(m), false)
                    }
                }
            }
        }
        let f = fp64(st);
        let target = self.level.load(Ordering::Relaxed);
        let shard = self.shard_of(f);
        let mut g = relock(&self.shards[shard]);
        self.sync_shard(&mut g, target);
        let (result, inserted) = match &mut *g {
            ShardMap::Exact(m) => {
                let disk = if m.contains_key(st) {
                    None
                } else {
                    self.spill_probe(shard, f, || fp128(st))
                };
                upd(m, st.clone(), mask, disk)
            }
            ShardMap::Fp128(m) => {
                let k = fp128(st);
                let disk = if m.contains_key(&k) {
                    None
                } else {
                    self.spill_probe(shard, f, || k)
                };
                upd(m, k, mask, disk)
            }
            ShardMap::Fp64(m) => {
                let disk = if m.contains_key(&f) {
                    None
                } else {
                    self.spill_probe(shard, f, || fp128(st))
                };
                upd(m, f, mask, disk)
            }
        };
        drop(g);
        if inserted {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Probes spilled segments of `shard` for `fp`. `None` when no
    /// store is attached or the shard has no live segments.
    fn spill_probe<F: FnOnce() -> u128>(&self, shard: usize, fp: u64, fp128_of: F) -> Option<u64> {
        match &self.spill {
            Some(s) if s.has_segments(shard) => s.probe(shard, fp, fp128_of),
            _ => None,
        }
    }

    /// Has `st` been visited (with any sleep mask)? Used by the ample
    /// proviso; a false negative only costs reduction, a false
    /// positive only costs exploration work. Spilled segments are
    /// consulted (the per-segment fingerprint summary is only a
    /// gate — summary hits fall through to a real disk probe, so the
    /// answer never depends on summary false positives).
    fn contains(&self, st: &St) -> bool {
        let f = fp64(st);
        let shard = self.shard_of(f);
        let g = relock(&self.shards[shard]);
        let in_ram = match &*g {
            ShardMap::Exact(m) => m.contains_key(st),
            ShardMap::Fp128(m) => m.contains_key(&fp128(st)),
            ShardMap::Fp64(m) => m.contains_key(&f),
        };
        // Probe while holding the shard lock: the lock order (shard
        // mutex, then segment list) matches the spill path.
        in_ram || self.spill_probe(shard, f, || fp128(st)).is_some()
    }

    /// The spill trigger in bytes, when a store is attached and still
    /// healthy. `None` sends the memory-budget path straight to the
    /// in-RAM lossy ladder.
    fn spill_trigger(&self) -> Option<usize> {
        self.spill
            .as_ref()
            .filter(|s| s.enabled())
            .map(|s| s.trigger())
    }

    /// Writes the largest RAM shard out as one spill segment and
    /// clears it. Returns `false` when nothing worth spilling remains
    /// (callers then fall back to the lossy ladder) or the write
    /// failed (data stays in RAM — the write path never drops entries
    /// it could not durably read back).
    fn spill_coldest_shard(&self) -> bool {
        let Some(store) = &self.spill else {
            return false;
        };
        if !store.enabled() {
            return false;
        }
        let (mut best, mut best_len) = (0usize, 0usize);
        for (i, s) in self.shards.iter().enumerate() {
            let len = relock(s).len();
            if len > best_len {
                (best, best_len) = (i, len);
            }
        }
        if best_len < 8 {
            return false;
        }
        let mut g = relock(&self.shards[best]);
        // Exact entries are fingerprinted on the way out (like the
        // checkpoint codec): the disk image is fp128-precise.
        let (level, v64, v128): VisitedSnapshot = match &*g {
            ShardMap::Exact(m) => (
                LEVEL_FP128,
                Vec::new(),
                m.iter().map(|(st, mask)| (fp128(st), *mask)).collect(),
            ),
            ShardMap::Fp128(m) => (
                LEVEL_FP128,
                Vec::new(),
                m.iter().map(|(k, v)| (*k, *v)).collect(),
            ),
            ShardMap::Fp64(m) => (
                LEVEL_FP64,
                m.iter().map(|(k, v)| (*k, *v)).collect(),
                Vec::new(),
            ),
        };
        if v64.len() + v128.len() < 8 {
            return false;
        }
        if !store.write_shard(best, level, &v64, &v128) {
            return false;
        }
        let n = g.len();
        *g = match &*g {
            ShardMap::Exact(_) => ShardMap::Exact(HashMap::new()),
            ShardMap::Fp128(_) => ShardMap::Fp128(HashMap::new()),
            ShardMap::Fp64(_) => ShardMap::Fp64(HashMap::new()),
        };
        drop(g);
        self.entries.fetch_sub(n, Ordering::Relaxed);
        true
    }

    /// Rough bytes held: entries × per-entry cost at the current rung
    /// (hash-map overhead plus key/value payload).
    fn memory_estimate(&self, state_size: usize) -> usize {
        let per = match self.level.load(Ordering::Relaxed) {
            LEVEL_EXACT => 48 + state_size,
            LEVEL_FP128 => 56,
            _ => 48,
        };
        self.entries.load(Ordering::Relaxed) * per
    }

    /// Steps the global ladder down one rung. Returns the transition
    /// taken, or `None` if already at the last rung. Exactly one
    /// caller wins a given rung, so each downgrade warns once.
    fn request_downgrade(&self) -> Option<(&'static str, &'static str)> {
        loop {
            let cur = self.level.load(Ordering::SeqCst);
            if cur >= LEVEL_FP64 {
                return None;
            }
            if self
                .level
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some((level_name(cur), level_name(cur + 1)));
            }
        }
    }

    /// Serializes every entry at a disk-representable level:
    /// fp128 while the ladder allows it, else fp64 (exact states are
    /// fingerprinted — the reason resume records a downgrade warning).
    fn snapshot(&self) -> VisitedSnapshot {
        let mut max_level = self.level.load(Ordering::SeqCst);
        for s in &self.shards {
            max_level = max_level.max(relock(s).level());
        }
        let disk = if max_level <= LEVEL_FP128 {
            LEVEL_FP128
        } else {
            LEVEL_FP64
        };
        let mut v64 = Vec::new();
        let mut v128 = Vec::new();
        for s in &self.shards {
            let g = relock(s);
            match &*g {
                ShardMap::Exact(m) => {
                    for (st, mask) in m {
                        if disk == LEVEL_FP128 {
                            v128.push((fp128(st), *mask));
                        } else {
                            v64.push((fp64(st), *mask));
                        }
                    }
                }
                ShardMap::Fp128(m) => {
                    for (fp, mask) in m {
                        if disk == LEVEL_FP128 {
                            v128.push((*fp, *mask));
                        } else {
                            v64.push((*fp as u64, *mask));
                        }
                    }
                }
                ShardMap::Fp64(m) => {
                    for (fp, mask) in m {
                        v64.push((*fp, *mask));
                    }
                }
            }
        }
        (disk, v64, v128)
    }

    /// Rebuilds a visited set from checkpoint data, at the more
    /// degraded of the configured and stored levels.
    fn restore(
        mode: VisitedMode,
        shards: usize,
        data: &CheckpointData,
    ) -> (Self, Option<ExploreWarning>) {
        let cfg_level = mode_level(mode);
        let eff = cfg_level.max(data.level);
        let warn = (cfg_level < data.level).then(|| ExploreWarning::ResumeVisitedDowngrade {
            requested: level_name(cfg_level),
            restored: level_name(eff),
        });
        let mode = if eff <= LEVEL_FP128 {
            VisitedMode::Fp128
        } else {
            VisitedMode::Fp64
        };
        let v = Visited::new(mode, shards);
        let mut n = 0usize;
        // fp128's low 64 bits are the state's fp64, so sharding by the
        // low word matches `check_insert`'s placement.
        for &(fp, mask) in &data.visited64 {
            let mut g = relock(&v.shards[v.shard_of(fp)]);
            if let ShardMap::Fp64(m) = &mut *g {
                m.insert(fp, mask);
                n += 1;
            }
        }
        for &(fp, mask) in &data.visited128 {
            let low = fp as u64;
            let mut g = relock(&v.shards[v.shard_of(low)]);
            match &mut *g {
                ShardMap::Fp128(m) => {
                    m.insert(fp, mask);
                    n += 1;
                }
                ShardMap::Fp64(m) => {
                    m.insert(low, mask);
                    n += 1;
                }
                ShardMap::Exact(_) => {}
            }
        }
        v.entries.store(n, Ordering::Relaxed);
        (v, warn)
    }
}

// ---------------------------------------------------------------------------
// Jobs and replayable paths
// ---------------------------------------------------------------------------

/// One link of a frontier entry's provenance: the flat transition
/// index taken at the parent. Flat indices count *all* transitions of
/// *all* agent groups in enumeration order (sleeping groups included),
/// so replay needs no knowledge of the sleep sets in force when the
/// path was generated.
struct PathNode {
    idx: u32,
    parent: Option<Arc<PathNode>>,
}

fn path_vec(path: &Option<Arc<PathNode>>) -> Vec<u32> {
    let mut v = Vec::new();
    let mut cur = path;
    while let Some(n) = cur {
        v.push(n.idx);
        cur = &n.parent;
    }
    v.reverse();
    v
}

fn arc_path(path: &[u32]) -> Option<Arc<PathNode>> {
    let mut cur = None;
    for &idx in path {
        cur = Some(Arc::new(PathNode { idx, parent: cur }));
    }
    cur
}

struct Job<St> {
    st: St,
    depth: usize,
    sleep: u64,
    /// Expansion attempts already burned (nonzero after a caught
    /// panic).
    attempt: u8,
    /// The state is already in the visited set and must be re-expanded
    /// without a dedup check (it was interrupted mid-expansion).
    revisit: bool,
    /// Provenance for checkpointing; `None` when not tracking (or for
    /// the initial state, whose path is empty).
    path: Option<Arc<PathNode>>,
}

fn replay_step<S: TransitionSystem>(
    sys: &S,
    st: &S::State,
    idx: u32,
) -> Result<S::State, &'static str> {
    let groups = sys.agent_groups(st);
    let mut i = idx as usize;
    for g in &groups {
        if i < g.transitions.len() {
            return match &g.transitions[i].target {
                Target::State(s) => Ok(s.clone()),
                _ => Err("path step is not a state transition"),
            };
        }
        i -= g.transitions.len();
    }
    Err("path index out of range")
}

fn replay_state<S: TransitionSystem>(sys: &S, path: &[u32]) -> Result<S::State, &'static str> {
    let mut st = sys.initial_state();
    for &idx in path {
        st = replay_step(sys, &st, idx)?;
    }
    Ok(st)
}

fn replay_behavior<S: TransitionSystem>(
    sys: &S,
    sb: &SavedBehavior,
) -> Result<S::Behavior, &'static str> {
    let st = replay_state(sys, &sb.path)?;
    match sb.emit {
        None => sys
            .terminal_behavior(&st)
            .ok_or("no terminal behavior at path end"),
        Some(idx) => {
            let groups = sys.agent_groups(&st);
            let mut i = idx as usize;
            for g in &groups {
                if i < g.transitions.len() {
                    return match &g.transitions[i].target {
                        Target::Behavior(b) => Ok(b.clone()),
                        _ => Err("emission index is not a behavior"),
                    };
                }
                i -= g.transitions.len();
            }
            Err("emission index out of range")
        }
    }
}

// ---------------------------------------------------------------------------
// Shared engine state
// ---------------------------------------------------------------------------

struct Shared<'a, S: TransitionSystem> {
    sys: &'a S,
    cfg: &'a ExploreConfig,
    visited: Visited<S::State>,
    queue: Mutex<VecDeque<Job<S::State>>>,
    cv: Condvar,
    /// Jobs created but not yet fully processed.
    pending: AtomicUsize,
    /// Hard stop: abandon (non-durable) or preserve (durable) the
    /// frontier.
    stop: AtomicBool,
    /// First cause of the stop/drain, as [`StopReason::as_u8`].
    stop_reason: AtomicU8,
    /// Soft stop (state budget, non-durable): drain the frontier for
    /// terminal behaviors without expanding further — the seed
    /// explorer's off-by-one dropped these.
    drain: AtomicBool,
    /// The depth bound hit at least once (drives iterative deepening).
    depth_truncated: AtomicBool,
    states_total: AtomicUsize,
    behaviors: Mutex<BTreeSet<S::Behavior>>,
    /// Provenance of every recorded behavior (durable runs only).
    behavior_log: Mutex<Vec<SavedBehavior>>,
    depth_limit: usize,
    start: Instant,
    /// Checkpointing is active: budget trips stop instead of draining,
    /// jobs carry paths, and workers hand their private frontier back
    /// to the global queue on stop.
    durable: bool,
    /// fp64 of the initial state (checkpoint identity check).
    digest: u64,
    /// Counters carried over from the resumed checkpoint.
    base: SavedCounters,
    /// Frontier spilling is active (spill store configured,
    /// single-worker DFS): jobs carry replay paths and cold frontier
    /// halves move to disk when the local deque crosses the threshold.
    frontier_spill: bool,
}

impl<S: TransitionSystem> Shared<'_, S> {
    fn deadline_expired(&self) -> bool {
        match self.cfg.deadline {
            Some(d) => self.start.elapsed() >= d,
            None => false,
        }
    }

    fn note_reason(&self, r: StopReason) {
        let _ = self.stop_reason.compare_exchange(
            StopReason::Completed.as_u8(),
            r.as_u8(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    fn request_stop(&self, r: StopReason) {
        self.note_reason(r);
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Re-enqueues a job so a resumed run re-expands it (bypassing the
    /// dedup check: its state is already in the visited set).
    fn requeue_for_resume(&self, mut job: Job<S::State>) {
        job.revisit = true;
        self.pending.fetch_add(1, Ordering::SeqCst);
        relock(&self.queue).push_back(job);
    }
}

fn pop_local<St>(local: &mut VecDeque<Job<St>>, strategy: &Strategy) -> Option<Job<St>> {
    match strategy {
        Strategy::Bfs => local.pop_front(),
        _ => local.pop_back(),
    }
}

fn next_job<S: TransitionSystem>(
    sh: &Shared<S>,
    local: &mut VecDeque<Job<S::State>>,
) -> Option<Job<S::State>> {
    if sh.stop.load(Ordering::SeqCst) {
        return None;
    }
    // Check the deadline before every dequeue — including local pops —
    // so expiry is noticed within one expansion, not one frontier
    // refill.
    if sh.deadline_expired() {
        sh.request_stop(StopReason::DeadlineExpired);
        return None;
    }
    if let Some(j) = pop_local(local, &sh.cfg.strategy) {
        return Some(j);
    }
    let mut q = relock(&sh.queue);
    loop {
        if sh.stop.load(Ordering::SeqCst) {
            return None;
        }
        if sh.deadline_expired() {
            drop(q);
            sh.request_stop(StopReason::DeadlineExpired);
            return None;
        }
        if let Some(j) = q.pop_front() {
            return Some(j);
        }
        if sh.pending.load(Ordering::SeqCst) == 0 {
            return None;
        }
        // Timed wait so deadline expiry and missed notifications
        // self-heal.
        q = sh
            .cv
            .wait_timeout(q, Duration::from_millis(5))
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

// ---------------------------------------------------------------------------
// Expansion
// ---------------------------------------------------------------------------

/// Everything one expansion produces, buffered so that effects are
/// applied only when the user code completed without panicking (which
/// makes a retry idempotent) and discarded wholesale when a deadline
/// aborts the expansion midway.
struct Expanded<St, B> {
    terminal: Option<B>,
    depth_hit: bool,
    /// The deadline fired between successor groups: discard
    /// everything and requeue the job.
    aborted: bool,
    /// Emitted behaviors with their flat transition indices.
    emitted: Vec<(B, u32)>,
    /// Successors: state, flat transition index, child sleep mask.
    children: Vec<(St, u32, u64)>,
    transitions: usize,
    sleep_skips: usize,
    ample_commits: usize,
    na_commutes: usize,
    read_commutes: usize,
    atomic_commutes: usize,
    pruned: usize,
    racy: usize,
    promise: usize,
}

impl<St, B> Expanded<St, B> {
    fn empty() -> Self {
        Expanded {
            terminal: None,
            depth_hit: false,
            aborted: false,
            emitted: Vec::new(),
            children: Vec::new(),
            transitions: 0,
            sleep_skips: 0,
            ample_commits: 0,
            na_commutes: 0,
            read_commutes: 0,
            atomic_commutes: 0,
            pruned: 0,
            racy: 0,
            promise: 0,
        }
    }
}

/// Runs all user code for one state. Called under `catch_unwind`.
#[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
fn expand<S: TransitionSystem>(
    sh: &Shared<S>,
    st: &S::State,
    depth: usize,
    sleep: u64,
    fp: u64,
    attempt: u8,
    halt: bool,
) -> Expanded<S::State, S::Behavior> {
    #[cfg(feature = "fault-injection")]
    if let Some(plan) = &sh.cfg.fault {
        if let Some(d) = plan.injects_delay(fp) {
            std::thread::sleep(d);
        }
        if let Some(fault) = plan.injects_panic(fp, attempt) {
            std::panic::panic_any(fault);
        }
    }
    let mut out = Expanded::empty();
    out.terminal = sh.sys.terminal_behavior(st);
    if out.terminal.is_some() || halt {
        return out;
    }
    if depth >= sh.depth_limit {
        out.depth_hit = true;
        return out;
    }

    let groups = sh.sys.agent_groups(st);
    // Flat transition indices span ALL groups, sleeping ones included,
    // so a checkpointed path replays without sleep-set knowledge.
    let mut idx_base = Vec::with_capacity(groups.len());
    let mut acc = 0u32;
    for g in &groups {
        idx_base.push(acc);
        acc += g.transitions.len() as u32;
    }
    let mut awake: Vec<usize> = Vec::with_capacity(groups.len());
    for (gi, g) in groups.iter().enumerate() {
        if sh.cfg.reduction && sh.cfg.rules.sleep && g.agent < 64 && sleep & (1 << g.agent) != 0 {
            out.sleep_skips += 1;
        } else {
            awake.push(gi);
        }
    }

    // Record emissions and statistics tags of every awake group — even
    // ones the ample selection below will not expand.
    for &gi in &awake {
        let g = &groups[gi];
        for (j, t) in g.transitions.iter().enumerate() {
            out.transitions += 1;
            if t.tags.racy {
                out.racy += 1;
            }
            if t.tags.promise {
                out.promise += 1;
            }
            match &t.target {
                Target::Behavior(b) => out.emitted.push((b.clone(), idx_base[gi] + j as u32)),
                Target::Pruned => out.pruned += 1,
                Target::State(_) => {}
            }
        }
    }

    let ample = if sh.cfg.reduction && sh.cfg.rules.ample && awake.len() > 1 {
        awake.iter().copied().find(|&gi| {
            let g = &groups[gi];
            g.local
                && !g.transitions.is_empty()
                && g.transitions
                    .iter()
                    .all(|t| matches!(&t.target, Target::State(s) if !sh.visited.contains(s)))
        })
    } else {
        None
    };
    if let Some(gi) = ample {
        out.ample_commits += 1;
        let g = &groups[gi];
        for (j, t) in g.transitions.iter().enumerate() {
            if let Target::State(s) = &t.target {
                // A local step is pure, so the sleep set survives it.
                out.children
                    .push((s.clone(), idx_base[gi] + j as u32, sleep));
            }
        }
    } else {
        // Pairwise sleep propagation. After executing group `g`, an
        // agent sleeps in `g`'s subtree iff its group here is
        // independent of `g` ([`groups_independent`]): sleeping agents
        // only survive steps that commute with them (an NA write
        // changes memory, so a pure reader must wake), and
        // earlier-expanded awake siblings go to sleep only against
        // groups they commute with. An inherited sleeper whose agent
        // has no group at this state is dropped (conservative:
        // independence preserves enabledness, so this should not
        // arise, and waking it only costs work).
        let mut earlier: Vec<usize> = Vec::with_capacity(awake.len());
        for &gi in &awake {
            // Deadline check between successor batches, not only at
            // dequeue: a state with many wide groups cannot overshoot
            // the deadline by a whole expansion.
            if sh.deadline_expired() {
                out.aborted = true;
                return out;
            }
            let g = &groups[gi];
            let child_sleep = if sh.cfg.reduction && sh.cfg.rules.sleep {
                let mut mask = 0u64;
                let mut grant =
                    |h: &crate::AgentGroup<S::State, S::Behavior>,
                     out: &mut Expanded<S::State, S::Behavior>| {
                        if h.agent >= 64 {
                            return;
                        }
                        #[allow(unused_mut)]
                        let mut rule = groups_independent(g, h);
                        // Planted bug for the soundness battery: treat
                        // same-location atomic-write pairs as
                        // independent. The differential suites must
                        // observe the dropped behaviors.
                        #[cfg(feature = "fault-injection")]
                        if rule == crate::IndependenceRule::Dependent
                            && g.atomic_write.is_some()
                            && g.atomic_write == h.atomic_write
                            && sh
                                .cfg
                                .fault
                                .as_ref()
                                .is_some_and(|p| p.unsound_atomic_independence)
                        {
                            rule = crate::IndependenceRule::AtomicWrite;
                        }
                        if sh.cfg.rules.allows(rule) {
                            mask |= 1 << h.agent;
                            match rule {
                                crate::IndependenceRule::NaWrite => out.na_commutes += 1,
                                crate::IndependenceRule::Read => out.read_commutes += 1,
                                crate::IndependenceRule::AtomicWrite => out.atomic_commutes += 1,
                                _ => {}
                            }
                        }
                    };
                let mut sleepers = sleep;
                while sleepers != 0 {
                    let agent = sleepers.trailing_zeros() as usize;
                    sleepers &= sleepers - 1;
                    if let Some(h) = groups.iter().find(|h| h.agent == agent) {
                        grant(h, &mut out);
                    }
                }
                for &hi in &earlier {
                    grant(&groups[hi], &mut out);
                }
                mask
            } else {
                0
            };
            for (j, t) in g.transitions.iter().enumerate() {
                if let Target::State(s) = &t.target {
                    out.children
                        .push((s.clone(), idx_base[gi] + j as u32, child_sleep));
                }
            }
            earlier.push(gi);
        }
    }
    out
}

fn record_incident(
    stats: &mut ExploreStats,
    kind: IncidentKind,
    state_fp: u64,
    depth: usize,
    attempt: u8,
    message: String,
) {
    if stats.incidents.len() < ExploreStats::MAX_RECORDED_INCIDENTS {
        stats.incidents.push(ExploreIncident {
            kind,
            state_fp,
            depth,
            attempt,
            message,
        });
    }
    stats.incident_count += 1;
}

/// Applies the fault plan's forced downgrades and the memory budget.
/// Returns `true` when the budget is breached with no rung left.
#[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
fn enforce_memory_budget<S: TransitionSystem>(
    sh: &Shared<S>,
    stats: &mut ExploreStats,
    n: usize,
) -> bool {
    let downgrade = |stats: &mut ExploreStats| {
        if let Some((from, to)) = sh.visited.request_downgrade() {
            stats.downgrades += 1;
            stats
                .warnings
                .push(ExploreWarning::MemoryDowngrade { from, to });
            true
        } else {
            false
        }
    };
    #[cfg(feature = "fault-injection")]
    if let Some(k) = sh.cfg.fault.as_ref().and_then(|p| p.downgrade_every_states) {
        if k > 0 && n.is_multiple_of(k) {
            downgrade(stats);
        }
    }
    // Spill-first, lossy-last: while the spill store is healthy, push
    // cold shards to disk before consulting the precision ladder. A
    // dead store (ENOSPC, I/O errors) drops straight through.
    if let Some(trigger) = sh.visited.spill_trigger() {
        let size = std::mem::size_of::<S::State>();
        while sh.visited.memory_estimate(size) > trigger && sh.visited.spill_coldest_shard() {}
    }
    let Some(budget) = sh.cfg.max_memory else {
        return false;
    };
    if sh.visited.memory_estimate(std::mem::size_of::<S::State>()) <= budget {
        return false;
    }
    !downgrade(stats)
}

/// Expands one frontier entry with panic isolation: the visited-set
/// insert and the expansion each run under `catch_unwind`, effects are
/// buffered and applied only on success, and a persistently panicking
/// state is quarantined after `max_retries` retries.
fn process<S: TransitionSystem>(
    sh: &Shared<S>,
    job: Job<S::State>,
    local: &mut VecDeque<Job<S::State>>,
    stats: &mut ExploreStats,
) {
    let Job {
        st,
        depth,
        sleep,
        attempt,
        revisit,
        path,
    } = job;
    let sleep_in = if sh.cfg.reduction && sh.cfg.rules.sleep {
        sleep
    } else {
        0
    };

    // Phase 1: fingerprint + dedup (runs the state's Hash/Eq). A panic
    // here quarantines without retry: the dedup status is unknowable.
    let phase1 = catch_unwind(AssertUnwindSafe(|| {
        let fp = fp64(&st);
        let mask = if revisit {
            Some(sleep_in)
        } else {
            sh.visited.check_insert(&st, sleep_in)
        };
        (fp, mask)
    }));
    let (fp, mask) = match phase1 {
        Ok(v) => v,
        Err(p) => {
            record_incident(
                stats,
                IncidentKind::InsertPanic,
                0,
                depth,
                attempt,
                panic_message(p),
            );
            stats.quarantined += 1;
            return;
        }
    };
    let sleep = match mask {
        None => {
            stats.dedup_hits += 1;
            return;
        }
        Some(m) => m,
    };

    let track = sh.durable;
    if sh.drain.load(Ordering::Relaxed) {
        // Budget exhausted (non-durable): collect terminals on the
        // remaining frontier, expand nothing.
        match catch_unwind(AssertUnwindSafe(|| sh.sys.terminal_behavior(&st))) {
            Ok(Some(b)) => {
                relock(&sh.behaviors).insert(b);
            }
            Ok(None) => {}
            Err(p) => {
                record_incident(
                    stats,
                    IncidentKind::ExpansionPanic,
                    fp,
                    depth,
                    attempt,
                    panic_message(p),
                );
                stats.quarantined += 1;
            }
        }
        return;
    }

    stats.states += 1;
    let n = sh.states_total.fetch_add(1, Ordering::Relaxed) + 1;
    let mut halt = false;
    if n >= sh.cfg.max_states {
        if sh.durable {
            // Durable runs stop — preserving the frontier, this state
            // included — so a resumed run picks up exactly here.
            stats.states -= 1;
            sh.states_total.fetch_sub(1, Ordering::Relaxed);
            sh.requeue_for_resume(Job {
                st,
                depth,
                sleep,
                attempt,
                revisit: true,
                path,
            });
            sh.request_stop(StopReason::StateBudget);
            return;
        }
        sh.note_reason(StopReason::StateBudget);
        sh.drain.store(true, Ordering::Relaxed);
        stats.truncated = true;
        halt = true;
    } else if enforce_memory_budget(sh, stats, n) {
        if sh.durable {
            stats.states -= 1;
            sh.states_total.fetch_sub(1, Ordering::Relaxed);
            sh.requeue_for_resume(Job {
                st,
                depth,
                sleep,
                attempt,
                revisit: true,
                path,
            });
            sh.request_stop(StopReason::MemoryBudget);
            return;
        }
        sh.note_reason(StopReason::MemoryBudget);
        sh.drain.store(true, Ordering::Relaxed);
        stats.truncated = true;
        halt = true;
    }

    // Phase 2: expansion, with retries. Effects are buffered in
    // `Expanded` and applied only below, so a retry never
    // double-applies anything.
    let mut att = attempt;
    let expanded = loop {
        match catch_unwind(AssertUnwindSafe(|| {
            expand(sh, &st, depth, sleep, fp, att, halt)
        })) {
            Ok(e) => {
                if att > 0 {
                    stats.retried += 1;
                }
                break e;
            }
            Err(p) => {
                record_incident(
                    stats,
                    IncidentKind::ExpansionPanic,
                    fp,
                    depth,
                    att,
                    panic_message(p),
                );
                if att >= sh.cfg.max_retries {
                    stats.quarantined += 1;
                    return;
                }
                att += 1;
            }
        }
    };

    if expanded.aborted {
        // Deadline fired mid-expansion: apply nothing, requeue the job
        // so a durable resume re-expands it from scratch.
        stats.states -= 1;
        sh.states_total.fetch_sub(1, Ordering::Relaxed);
        sh.requeue_for_resume(Job {
            st,
            depth,
            sleep,
            attempt: att,
            revisit: true,
            path,
        });
        sh.request_stop(StopReason::DeadlineExpired);
        return;
    }

    stats.transitions += expanded.transitions;
    stats.sleep_skips += expanded.sleep_skips;
    stats.ample_commits += expanded.ample_commits;
    stats.na_commutes += expanded.na_commutes;
    stats.read_commutes += expanded.read_commutes;
    stats.atomic_commutes += expanded.atomic_commutes;
    stats.pruned += expanded.pruned;
    stats.racy_steps += expanded.racy;
    stats.promise_steps += expanded.promise;

    if let Some(b) = expanded.terminal {
        relock(&sh.behaviors).insert(b);
        if track {
            relock(&sh.behavior_log).push(SavedBehavior {
                emit: None,
                path: path_vec(&path),
            });
        }
        return;
    }
    if halt {
        return;
    }
    if expanded.depth_hit {
        stats.truncated = true;
        sh.depth_truncated.store(true, Ordering::Relaxed);
        return;
    }

    if !expanded.emitted.is_empty() {
        if track {
            let mut log = relock(&sh.behavior_log);
            for (_, idx) in &expanded.emitted {
                log.push(SavedBehavior {
                    emit: Some(*idx),
                    path: path_vec(&path),
                });
            }
        }
        relock(&sh.behaviors).extend(expanded.emitted.into_iter().map(|(b, _)| b));
    }

    if expanded.children.is_empty() {
        return;
    }
    let jobs: Vec<Job<S::State>> = expanded
        .children
        .into_iter()
        .map(|(s, idx, child_sleep)| Job {
            st: s,
            depth: depth + 1,
            sleep: child_sleep,
            attempt: 0,
            revisit: false,
            path: if track || sh.frontier_spill {
                Some(Arc::new(PathNode {
                    idx,
                    parent: path.clone(),
                }))
            } else {
                None
            },
        })
        .collect();
    push_jobs(sh, local, jobs);
}

fn push_jobs<S: TransitionSystem>(
    sh: &Shared<S>,
    local: &mut VecDeque<Job<S::State>>,
    jobs: Vec<Job<S::State>>,
) {
    sh.pending.fetch_add(jobs.len(), Ordering::SeqCst);
    local.extend(jobs);
    // Offload half the private frontier whenever the shared queue runs
    // low — cheap cooperative work-stealing.
    if sh.cfg.workers > 1 && local.len() > 1 {
        let mut q = relock(&sh.queue);
        if q.len() < sh.cfg.workers * 2 {
            let give = local.len() / 2;
            for _ in 0..give {
                if let Some(j) = local.pop_front() {
                    q.push_back(j);
                }
            }
            drop(q);
            sh.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

fn counters_from(base: &SavedCounters, s: &ExploreStats) -> SavedCounters {
    SavedCounters {
        states: base.states + s.states as u64,
        transitions: base.transitions + s.transitions as u64,
        dedup_hits: base.dedup_hits + s.dedup_hits as u64,
        sleep_skips: base.sleep_skips + s.sleep_skips as u64,
        ample_commits: base.ample_commits + s.ample_commits as u64,
        pruned: base.pruned + s.pruned as u64,
        racy_steps: base.racy_steps + s.racy_steps as u64,
        promise_steps: base.promise_steps + s.promise_steps as u64,
        quarantined: base.quarantined + s.quarantined as u64,
    }
}

fn add_base(stats: &mut ExploreStats, base: &SavedCounters) {
    stats.states += base.states as usize;
    stats.transitions += base.transitions as usize;
    stats.dedup_hits += base.dedup_hits as usize;
    stats.sleep_skips += base.sleep_skips as usize;
    stats.ample_commits += base.ample_commits as usize;
    stats.pruned += base.pruned as usize;
    stats.racy_steps += base.racy_steps as usize;
    stats.promise_steps += base.promise_steps as usize;
    stats.quarantined += base.quarantined as usize;
}

/// Captures the whole run: visited fingerprints, the global queue plus
/// `extra` (the calling worker's private frontier), and the behavior
/// log.
/// `finalize` governs unreadable spilled-frontier segments: the final
/// save quarantines them (their jobs are lost, reported separately),
/// a periodic save leaves them on disk and reports how many jobs it
/// could not fold in (the caller then skips the save). `with_manifest`
/// records the live visited spill segments so a resume can re-adopt
/// them; pass `false` when the segments are about to be deleted.
fn snapshot<S: TransitionSystem>(
    sh: &Shared<S>,
    extra: &VecDeque<Job<S::State>>,
    counters: SavedCounters,
    finalize: bool,
    with_manifest: bool,
) -> (CheckpointData, u64) {
    let (level, visited64, visited128) = sh.visited.snapshot();
    let saved_job = |j: &Job<S::State>| SavedJob {
        revisit: j.revisit,
        sleep: j.sleep,
        path: path_vec(&j.path),
    };
    let q = relock(&sh.queue);
    let mut frontier: Vec<SavedJob> = q.iter().chain(extra.iter()).map(saved_job).collect();
    drop(q);
    let mut unreadable = 0u64;
    let (mut spill_shards, mut spill) = (0u32, Vec::new());
    if let Some(store) = &sh.visited.spill {
        let (jobs, lost) = store.frontier_collect(finalize);
        frontier.extend(jobs);
        unreadable = lost;
        if with_manifest {
            (spill_shards, spill) = store.manifest();
        }
    }
    let behaviors = relock(&sh.behavior_log).clone();
    (
        CheckpointData {
            level,
            digest: sh.digest,
            counters,
            visited64,
            visited128,
            frontier,
            behaviors,
            spill_shards,
            spill,
        },
        unreadable,
    )
}

/// Periodic mid-run save: single-worker durable runs only (a parallel
/// frontier has no consistent snapshot without a global pause).
fn maybe_save<S: TransitionSystem>(
    sh: &Shared<S>,
    local: &VecDeque<Job<S::State>>,
    stats: &mut ExploreStats,
    last: &mut Instant,
) {
    if !sh.durable || sh.cfg.workers > 1 {
        return;
    }
    let Some(spec) = &sh.cfg.checkpoint else {
        return;
    };
    let Some(every) = spec.every else {
        return;
    };
    if last.elapsed() < every {
        return;
    }
    *last = Instant::now();
    let (data, unreadable) = snapshot(sh, local, counters_from(&sh.base, stats), false, true);
    if unreadable > 0 {
        // A spilled frontier segment would not read back: saving now
        // would drop its jobs from the checkpoint. Keep the previous
        // complete checkpoint and try again next period.
        stats.warnings.push(ExploreWarning::CheckpointSaveFailed {
            path: spec.path.clone(),
            message: format!(
                "{unreadable} spilled frontier job(s) unreadable; keeping previous checkpoint"
            ),
        });
        return;
    }
    match checkpoint::save(&spec.path, &data) {
        Ok(()) => stats.checkpoint_saves += 1,
        Err(w) => stats.warnings.push(w),
    }
}

/// Spills the cold (front) half of a single-worker DFS deque once it
/// crosses the store's threshold. Spilled jobs stay counted in
/// `pending`; a failed write pushes them straight back, in order.
fn maybe_spill_frontier<S: TransitionSystem>(sh: &Shared<S>, local: &mut VecDeque<Job<S::State>>) {
    if !sh.frontier_spill {
        return;
    }
    let Some(store) = &sh.visited.spill else {
        return;
    };
    if !store.enabled() || local.len() < store.frontier_threshold() {
        return;
    }
    let take = local.len() / 2;
    // Retry bookkeeping must stay in RAM, and every spilled job needs
    // a replay path (only the depth-0 root legitimately has none).
    if local
        .iter()
        .take(take)
        .any(|j| j.attempt != 0 || (j.depth > 0 && j.path.is_none()))
    {
        return;
    }
    let drained: Vec<Job<S::State>> = local.drain(..take).collect();
    let saved: Vec<SavedJob> = drained
        .iter()
        .map(|j| SavedJob {
            revisit: j.revisit,
            sleep: j.sleep,
            path: path_vec(&j.path),
        })
        .collect();
    if !store.write_frontier(&saved) {
        for j in drained.into_iter().rev() {
            local.push_front(j);
        }
    }
}

/// Refills an empty DFS deque from the newest spilled frontier
/// segment (LIFO, preserving the no-spill pop order). A segment that
/// fails validation or replay loses its jobs — reported and counted
/// out of `pending` so the run still terminates.
fn maybe_reload_frontier<S: TransitionSystem>(
    sh: &Shared<S>,
    local: &mut VecDeque<Job<S::State>>,
    stats: &mut ExploreStats,
) {
    if !sh.frontier_spill {
        return;
    }
    let Some(store) = &sh.visited.spill else {
        return;
    };
    while local.is_empty() {
        match store.pop_frontier() {
            FrontierLoad::Empty => return,
            FrontierLoad::Jobs(saved) => {
                let mut lost = 0u64;
                for sj in saved {
                    match catch_unwind(AssertUnwindSafe(|| replay_state(sh.sys, &sj.path))) {
                        Ok(Ok(st)) => local.push_back(Job {
                            st,
                            depth: sj.path.len(),
                            sleep: sj.sleep,
                            attempt: 0,
                            revisit: sj.revisit,
                            path: arc_path(&sj.path),
                        }),
                        _ => lost += 1,
                    }
                }
                if lost > 0 {
                    sh.pending.fetch_sub(lost as usize, Ordering::SeqCst);
                    stats.truncated = true;
                    stats
                        .warnings
                        .push(ExploreWarning::SpillFrontierLost { jobs: lost });
                    sh.cv.notify_all();
                }
            }
            FrontierLoad::Lost(n) => {
                sh.pending.fetch_sub(n as usize, Ordering::SeqCst);
                stats.truncated = true;
                stats
                    .warnings
                    .push(ExploreWarning::SpillFrontierLost { jobs: n });
                sh.cv.notify_all();
            }
        }
    }
}

fn worker_loop<S: TransitionSystem>(sh: &Shared<S>, stats: &mut ExploreStats) {
    let mut local: VecDeque<Job<S::State>> = VecDeque::new();
    let mut last_save = sh.start;
    loop {
        if local.is_empty() {
            maybe_reload_frontier(sh, &mut local, stats);
        }
        let Some(job) = next_job(sh, &mut local) else {
            break;
        };
        process(sh, job, &mut local, stats);
        if sh.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            sh.cv.notify_all();
        }
        maybe_save(sh, &local, stats, &mut last_save);
        maybe_spill_frontier(sh, &mut local);
    }
    // On a durable stop the private frontier must survive into the
    // final checkpoint.
    if sh.durable && !local.is_empty() {
        relock(&sh.queue).extend(local.drain(..));
    }
}

// ---------------------------------------------------------------------------
// Run setup (fresh or resumed)
// ---------------------------------------------------------------------------

struct RoundInit<S: TransitionSystem> {
    visited: Visited<S::State>,
    jobs: Vec<Job<S::State>>,
    behaviors: BTreeSet<S::Behavior>,
    behavior_log: Vec<SavedBehavior>,
    base: SavedCounters,
    warnings: Vec<ExploreWarning>,
    /// Spill manifest from the resumed checkpoint (shard count at save
    /// time plus the segment list); empty for fresh runs.
    spill_manifest: (u32, Vec<SpillSeg>),
}

fn fresh_init<S: TransitionSystem>(sys: &S, cfg: &ExploreConfig) -> RoundInit<S> {
    RoundInit {
        visited: Visited::new(cfg.visited, cfg.shards),
        jobs: vec![Job {
            st: sys.initial_state(),
            depth: 0,
            sleep: 0,
            attempt: 0,
            revisit: false,
            path: None,
        }],
        behaviors: BTreeSet::new(),
        behavior_log: Vec::new(),
        base: SavedCounters::default(),
        warnings: Vec::new(),
        spill_manifest: (0, Vec::new()),
    }
}

fn restore_init<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    data: &CheckpointData,
) -> Result<RoundInit<S>, CorruptReason> {
    if fp64(&sys.initial_state()) != data.digest {
        return Err(CorruptReason::SystemMismatch);
    }
    let (visited, warn) = Visited::restore(cfg.visited, cfg.shards, data);
    let mut jobs = Vec::with_capacity(data.frontier.len());
    for sj in &data.frontier {
        let st = replay_state(sys, &sj.path).map_err(CorruptReason::ReplayFailed)?;
        jobs.push(Job {
            st,
            depth: sj.path.len(),
            sleep: sj.sleep,
            attempt: 0,
            revisit: sj.revisit,
            path: arc_path(&sj.path),
        });
    }
    let mut behaviors = BTreeSet::new();
    for sb in &data.behaviors {
        behaviors.insert(replay_behavior(sys, sb).map_err(CorruptReason::ReplayFailed)?);
    }
    Ok(RoundInit {
        visited,
        jobs,
        behaviors,
        behavior_log: data.behaviors.clone(),
        base: data.counters,
        warnings: warn.into_iter().collect(),
        spill_manifest: (data.spill_shards, data.spill.clone()),
    })
}

/// Loads `cfg.resume` if set; any failure (unreadable, corrupt, wrong
/// system, replay mismatch, or a panic during replay) falls back to a
/// fresh run with a warning.
fn build_init<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    stats: &mut ExploreStats,
) -> RoundInit<S> {
    let Some(path) = &cfg.resume else {
        return fresh_init(sys, cfg);
    };
    let data = match checkpoint::load(path) {
        Err(message) => {
            stats.warnings.push(ExploreWarning::ResumeUnreadable {
                path: path.clone(),
                message,
            });
            return fresh_init(sys, cfg);
        }
        Ok(Err(reason)) => {
            stats.warnings.push(ExploreWarning::ResumeCorrupt {
                path: path.clone(),
                reason,
            });
            return fresh_init(sys, cfg);
        }
        Ok(Ok(d)) => d,
    };
    match catch_unwind(AssertUnwindSafe(|| restore_init(sys, cfg, &data))) {
        Ok(Ok(mut init)) => {
            stats.resumed = true;
            stats.warnings.append(&mut init.warnings);
            init
        }
        Ok(Err(reason)) => {
            stats.warnings.push(ExploreWarning::ResumeCorrupt {
                path: path.clone(),
                reason,
            });
            fresh_init(sys, cfg)
        }
        Err(_) => {
            stats.warnings.push(ExploreWarning::ResumeCorrupt {
                path: path.clone(),
                reason: CorruptReason::ReplayFailed("panic during replay"),
            });
            fresh_init(sys, cfg)
        }
    }
}

// ---------------------------------------------------------------------------
// Round and strategy drivers
// ---------------------------------------------------------------------------

/// One exhaustive round (DFS/BFS/one deepening step) at a fixed depth
/// limit, accumulating into `stats`.
/// Opens the configured spill store and attaches it to the round's
/// visited set. Resumed runs re-adopt the checkpoint's manifest
/// (identity-checked segment by segment); fresh runs clear any stale
/// segments left in the directory. Without a spill config, a non-empty
/// manifest is reported and its segments treated as unvisited (sound:
/// re-exploration only).
fn attach_spill<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    init: &mut RoundInit<S>,
    stats: &mut ExploreStats,
) {
    let manifest = std::mem::take(&mut init.spill_manifest);
    let Some(spec) = &cfg.spill else {
        if !manifest.1.is_empty() {
            stats.warnings.push(ExploreWarning::SpillIgnored {
                segments: manifest.1.len(),
            });
        }
        return;
    };
    let digest = fp64(&sys.initial_state());
    let trigger = spec.budget.or(cfg.max_memory).unwrap_or(64 << 20);
    let store = SpillStore::open(
        spec,
        cfg.shards.max(1),
        digest,
        trigger,
        #[cfg(feature = "fault-injection")]
        cfg.fault.clone(),
    );
    let store = match store {
        Ok(s) => s,
        Err(message) => {
            stats.warnings.push(ExploreWarning::SpillFailed { message });
            return;
        }
    };
    if stats.resumed {
        store.adopt(manifest.0, &manifest.1, &mut stats.warnings);
    } else {
        store.prune_except(&[]);
    }
    init.visited.spill = Some(store);
}

fn run_round<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    depth_limit: usize,
    start: Instant,
    init: RoundInit<S>,
    stats: &mut ExploreStats,
) -> (BTreeSet<S::Behavior>, bool) {
    let durable = cfg.checkpoint.is_some();
    let frontier_spill = init.visited.spill.is_some()
        && cfg.workers.max(1) == 1
        && matches!(cfg.strategy, Strategy::Dfs);
    let base = init.base;
    let njobs = init.jobs.len();
    let sh = Shared {
        sys,
        cfg,
        visited: init.visited,
        queue: Mutex::new(init.jobs.into_iter().collect()),
        cv: Condvar::new(),
        pending: AtomicUsize::new(njobs),
        stop: AtomicBool::new(false),
        stop_reason: AtomicU8::new(StopReason::Completed.as_u8()),
        drain: AtomicBool::new(false),
        depth_truncated: AtomicBool::new(false),
        states_total: AtomicUsize::new(0),
        behaviors: Mutex::new(init.behaviors),
        behavior_log: Mutex::new(init.behavior_log),
        depth_limit,
        start,
        durable,
        digest: if durable {
            fp64(&sys.initial_state())
        } else {
            0
        },
        base,
        frontier_spill,
    };

    let workers = cfg.workers.max(1);
    let mut per_worker: Vec<ExploreStats> = (0..workers).map(|_| ExploreStats::default()).collect();
    if workers == 1 {
        if let Some(ws) = per_worker.first_mut() {
            worker_loop(&sh, ws);
        }
    } else {
        std::thread::scope(|scope| {
            for ws in per_worker.iter_mut() {
                scope.spawn(|| worker_loop(&sh, ws));
            }
        });
    }

    for ws in &per_worker {
        // Fold fresh (non-resumed) work into the process-wide counters
        // before checkpoint base counters are re-added below.
        crate::counters::record_explore(ws);
        stats.merge(ws);
        stats.worker_states.push(ws.states);
    }
    let reason = StopReason::from_u8(sh.stop_reason.load(Ordering::SeqCst));
    if reason != StopReason::Completed {
        stats.truncated = true;
        if reason == StopReason::DeadlineExpired {
            stats.deadline_hit = true;
        }
        if stats.stop == StopReason::Completed {
            stats.stop = reason;
        }
    }
    add_base(stats, &base);
    let depth_hit = sh.depth_truncated.load(Ordering::SeqCst);
    // An interrupted durable run keeps its visited spill segments on
    // disk: the final checkpoint's manifest references them and a
    // resume re-adopts them. Completed (or non-durable) runs delete
    // everything live; quarantined files always stay for inspection.
    let keep_spill = durable && reason != StopReason::Completed;
    if let Some(spec) = &cfg.checkpoint {
        let (data, _) = snapshot(
            &sh,
            &VecDeque::new(),
            counters_from(&SavedCounters::default(), stats),
            true,
            keep_spill,
        );
        match checkpoint::save(&spec.path, &data) {
            Ok(()) => stats.checkpoint_saves += 1,
            Err(w) => stats.warnings.push(w),
        }
    }
    if let Some(store) = &sh.visited.spill {
        let c = store.counters();
        stats.spill_shards += c.shards;
        stats.spill_bytes += c.bytes;
        stats.spill_probes += c.probes;
        stats.spill_hits += c.hits;
        stats.spill_quarantined += c.quarantined;
        crate::counters::add(&crate::counters::SPILL_SHARDS, c.shards);
        crate::counters::add(&crate::counters::SPILL_BYTES, c.bytes);
        crate::counters::add(&crate::counters::SPILL_PROBES, c.probes);
        crate::counters::add(&crate::counters::SPILL_HITS, c.hits);
        if c.frontier_lost > 0 {
            stats.truncated = true;
        }
        stats.warnings.extend(store.drain_events());
        if keep_spill {
            store.drop_frontier();
        } else {
            store.cleanup();
        }
    }
    let behaviors = sh
        .behaviors
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    (behaviors, depth_hit)
}

fn run_random_walks<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
    walks: usize,
    seed: u64,
    start: Instant,
) -> ExploreResult<S::Behavior> {
    let mut behaviors: BTreeSet<S::Behavior> = BTreeSet::new();
    let mut stats = ExploreStats {
        workers: cfg.workers.max(1),
        // Walks revisit states freely; exhaustiveness is not the goal.
        truncated: true,
        ..ExploreStats::default()
    };
    'walks: for w in 0..walks {
        let mut rng = SplitMix64::new(seed ^ mix64(w as u64 + 1));
        let mut st = sys.initial_state();
        for _ in 0..cfg.max_depth {
            if cfg.deadline.is_some_and(|d| start.elapsed() >= d) {
                stats.deadline_hit = true;
                stats.stop = StopReason::DeadlineExpired;
                break 'walks;
            }
            if let Some(b) = sys.terminal_behavior(&st) {
                behaviors.insert(b);
                break;
            }
            stats.states += 1;
            let mut succs: Vec<S::State> = Vec::new();
            let groups = sys.agent_groups(&st);
            for g in &groups {
                for t in &g.transitions {
                    stats.transitions += 1;
                    if t.tags.racy {
                        stats.racy_steps += 1;
                    }
                    if t.tags.promise {
                        stats.promise_steps += 1;
                    }
                    match &t.target {
                        Target::Behavior(b) => {
                            behaviors.insert(b.clone());
                        }
                        Target::Pruned => stats.pruned += 1,
                        Target::State(s) => succs.push(s.clone()),
                    }
                }
            }
            if succs.is_empty() {
                break;
            }
            st = succs[rng.below(succs.len())].clone();
        }
    }
    stats.elapsed = start.elapsed();
    crate::counters::record_explore(&stats);
    ExploreResult { behaviors, stats }
}

fn validate(cfg: &ExploreConfig) -> Result<(), ExploreError> {
    if cfg.checkpoint.is_some() || cfg.resume.is_some() || cfg.spill.is_some() {
        match cfg.strategy {
            Strategy::Dfs | Strategy::Bfs => {}
            _ => {
                return Err(ExploreError::UnsupportedStrategy {
                    strategy: format!("{:?}", cfg.strategy),
                })
            }
        }
    }
    if let Some(spec) = &cfg.checkpoint {
        if spec.path.as_os_str().is_empty() {
            return Err(ExploreError::InvalidConfig {
                message: "empty checkpoint path".into(),
            });
        }
    }
    if let Some(spec) = &cfg.spill {
        if spec.dir.as_os_str().is_empty() {
            return Err(ExploreError::InvalidConfig {
                message: "empty spill directory".into(),
            });
        }
    }
    Ok(())
}

/// Runs a validated configuration.
fn run<S: TransitionSystem>(sys: &S, cfg: &ExploreConfig) -> ExploreResult<S::Behavior> {
    let start = Instant::now();
    match cfg.strategy.clone() {
        Strategy::Dfs | Strategy::Bfs => {
            let mut stats = ExploreStats {
                workers: cfg.workers.max(1),
                ..ExploreStats::default()
            };
            let mut init = build_init(sys, cfg, &mut stats);
            attach_spill(sys, cfg, &mut init, &mut stats);
            let (behaviors, _) = run_round(sys, cfg, cfg.max_depth, start, init, &mut stats);
            stats.elapsed = start.elapsed();
            ExploreResult { behaviors, stats }
        }
        Strategy::IterativeDeepening { initial, step } => {
            let mut stats = ExploreStats {
                workers: cfg.workers.max(1),
                ..ExploreStats::default()
            };
            let mut behaviors = BTreeSet::new();
            let mut limit = initial.max(1).min(cfg.max_depth);
            loop {
                stats.truncated = false;
                let mut init = fresh_init(sys, cfg);
                init.behaviors = behaviors;
                let (b, depth_hit) = run_round(sys, cfg, limit, start, init, &mut stats);
                behaviors = b;
                if !depth_hit || limit >= cfg.max_depth || stats.deadline_hit {
                    break;
                }
                limit = limit.saturating_add(step.max(1)).min(cfg.max_depth);
            }
            stats.elapsed = start.elapsed();
            ExploreResult { behaviors, stats }
        }
        Strategy::RandomWalk { walks, seed } => run_random_walks(sys, cfg, walks, seed, start),
    }
}

/// Explores `sys` under `cfg`. Fails only on caller misconfiguration
/// ([`ExploreError`]); every mid-run degradation is reported through
/// [`ExploreStats`] instead.
pub fn try_explore<S: TransitionSystem>(
    sys: &S,
    cfg: &ExploreConfig,
) -> Result<ExploreResult<S::Behavior>, ExploreError> {
    validate(cfg)?;
    Ok(run(sys, cfg))
}

/// Explores `sys` under `cfg`, returning the behavior set and stats.
/// Infallible: an unusable durability request is dropped with a
/// [`DurabilityIgnored`](ExploreWarning::DurabilityIgnored) warning
/// (use [`try_explore`] to make it an error).
pub fn explore<S: TransitionSystem>(sys: &S, cfg: &ExploreConfig) -> ExploreResult<S::Behavior> {
    match validate(cfg) {
        Ok(()) => run(sys, cfg),
        Err(e) => {
            let mut stripped = cfg.clone();
            stripped.checkpoint = None;
            stripped.resume = None;
            stripped.spill = None;
            let mut r = run(sys, &stripped);
            r.stats.warnings.push(ExploreWarning::DurabilityIgnored {
                message: e.to_string(),
            });
            r
        }
    }
}

// Internal marker so the unused helper above never bitrots silently.
#[allow(dead_code)]
fn _assert_send_sync<T: Send + Sync>() {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::system::{AgentGroup, StepTags, Transition};

    /// Panic payload for intentional test panics; the quiet hook
    /// filters it so fault tests don't spew backtraces.
    struct TestBoom;

    fn quiet_panics() {
        use std::sync::OnceLock;
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let quiet = info.payload().is::<TestBoom>();
                #[cfg(feature = "fault-injection")]
                let quiet = quiet || info.payload().is::<crate::fault::InjectedFault>();
                if !quiet {
                    prev(info);
                }
            }));
        });
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqwm-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// N agents, each incrementing a private counter to `limit`. All
    /// steps are local, so ample reduction collapses the interleaving
    /// product (limit+1)^N to a single line per agent.
    struct Counters {
        agents: usize,
        limit: u8,
    }

    impl TransitionSystem for Counters {
        type State = Vec<u8>;
        type Behavior = Vec<u8>;

        fn initial_state(&self) -> Vec<u8> {
            vec![0; self.agents]
        }

        fn agent_groups(&self, st: &Vec<u8>) -> Vec<AgentGroup<Vec<u8>, Vec<u8>>> {
            (0..self.agents)
                .filter(|&i| st[i] < self.limit)
                .map(|i| {
                    let mut next = st.clone();
                    next[i] += 1;
                    AgentGroup {
                        agent: i,
                        transitions: vec![Transition::state(next)],
                        shared_pure: true,
                        local: true,
                        na_write: None,
                        shared_read: None,
                        atomic_write: None,
                    }
                })
                .collect()
        }

        fn terminal_behavior(&self, st: &Vec<u8>) -> Option<Vec<u8>> {
            st.iter().all(|&c| c == self.limit).then(|| st.clone())
        }
    }

    /// Two agents racing on one shared cell: agent 0 reads it (pure
    /// but NOT local), agent 1 writes 1 (neither). The behavior set
    /// {(0,·),(1,·)} must survive reduction — this is exactly the
    /// read-vs-write case where treating a pure read as ample-able
    /// would lose a behavior.
    struct ReadVsWrite;

    /// State: (agent0 result or 255, agent1 done, cell).
    impl TransitionSystem for ReadVsWrite {
        type State = (u8, bool, u8);
        type Behavior = (u8, u8);

        fn initial_state(&self) -> Self::State {
            (255, false, 0)
        }

        fn agent_groups(&self, st: &Self::State) -> Vec<AgentGroup<Self::State, Self::Behavior>> {
            let mut out = Vec::new();
            if st.0 == 255 {
                out.push(AgentGroup {
                    agent: 0,
                    transitions: vec![Transition::state((st.2, st.1, st.2))],
                    shared_pure: true,
                    local: false,
                    na_write: None,
                    shared_read: None,
                    atomic_write: None,
                });
            }
            if !st.1 {
                out.push(AgentGroup {
                    agent: 1,
                    transitions: vec![Transition::state((st.0, true, 1))],
                    shared_pure: false,
                    local: false,
                    na_write: None,
                    shared_read: None,
                    atomic_write: None,
                });
            }
            out
        }

        fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior> {
            (st.0 != 255 && st.1).then_some((st.0, st.2))
        }
    }

    /// A chain emitting a tagged behavior halfway: checks emission
    /// collection and tag counting.
    struct EmitChain;

    impl TransitionSystem for EmitChain {
        type State = u8;
        type Behavior = &'static str;

        fn initial_state(&self) -> u8 {
            0
        }

        fn agent_groups(&self, st: &u8) -> Vec<AgentGroup<u8, &'static str>> {
            if *st >= 3 {
                return vec![];
            }
            let mut transitions = vec![Transition::state(st + 1)];
            if *st == 1 {
                transitions.push(Transition {
                    target: Target::Behavior("ub"),
                    tags: StepTags {
                        racy: true,
                        promise: false,
                    },
                });
                transitions.push(Transition {
                    target: Target::Pruned,
                    tags: StepTags {
                        racy: false,
                        promise: true,
                    },
                });
            }
            vec![AgentGroup {
                agent: 0,
                transitions,
                shared_pure: false,
                local: false,
                na_write: None,
                shared_read: None,
                atomic_write: None,
            }]
        }

        fn terminal_behavior(&self, st: &u8) -> Option<&'static str> {
            (*st == 3).then_some("done")
        }
    }

    /// Wraps `Counters` and panics (via `TestBoom`) when expanding the
    /// given state: the first `transient` attempts if finite, every
    /// attempt otherwise.
    struct PanicOn {
        inner: Counters,
        victim: Vec<u8>,
        transient: Option<usize>,
        hits: AtomicUsize,
    }

    impl TransitionSystem for PanicOn {
        type State = Vec<u8>;
        type Behavior = Vec<u8>;

        fn initial_state(&self) -> Vec<u8> {
            self.inner.initial_state()
        }

        fn agent_groups(&self, st: &Vec<u8>) -> Vec<AgentGroup<Vec<u8>, Vec<u8>>> {
            if *st == self.victim {
                let n = self.hits.fetch_add(1, Ordering::SeqCst);
                if self.transient.is_none_or(|k| n < k) {
                    std::panic::panic_any(TestBoom);
                }
            }
            self.inner.agent_groups(st)
        }

        fn terminal_behavior(&self, st: &Vec<u8>) -> Option<Vec<u8>> {
            self.inner.terminal_behavior(st)
        }
    }

    fn cfg(workers: usize, reduction: bool) -> ExploreConfig {
        ExploreConfig {
            workers,
            reduction,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn counters_single_behavior_all_modes() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want: BTreeSet<Vec<u8>> = [vec![3, 3, 3]].into_iter().collect();
        for workers in [1, 2, 4] {
            for reduction in [false, true] {
                let r = explore(&sys, &cfg(workers, reduction));
                assert_eq!(r.behaviors, want, "workers={workers} reduction={reduction}");
                assert!(!r.stats.truncated);
                assert_eq!(r.stats.stop, StopReason::Completed);
                assert!(r.stats.fault_free());
            }
        }
    }

    #[test]
    fn ample_reduction_collapses_independent_agents() {
        let sys = Counters {
            agents: 4,
            limit: 3,
        };
        let full = explore(&sys, &cfg(1, false));
        let reduced = explore(&sys, &cfg(1, true));
        assert_eq!(full.behaviors, reduced.behaviors);
        // Full product: 4^4 = 256 states. Reduced: one agent at a time
        // → 13 states. Any measurable reduction proves the machinery.
        assert_eq!(full.stats.states, 256);
        assert!(
            reduced.stats.states * 4 < full.stats.states,
            "reduced {} vs full {}",
            reduced.stats.states,
            full.stats.states
        );
        assert!(reduced.stats.ample_commits > 0);
    }

    #[test]
    fn reduction_keeps_read_write_race_behaviors() {
        let want: BTreeSet<(u8, u8)> = [(0, 1), (1, 1)].into_iter().collect();
        for workers in [1, 4] {
            for reduction in [false, true] {
                let r = explore(&ReadVsWrite, &cfg(workers, reduction));
                assert_eq!(r.behaviors, want, "workers={workers} reduction={reduction}");
            }
        }
    }

    /// N agents each performing `limit` non-atomic writes to a
    /// location of their own (`conflict: false`) or to one shared
    /// location (`conflict: true`). Groups are neither shared-pure nor
    /// local, so any reduction must come from the `na_write` rule.
    struct NaWriters {
        agents: usize,
        limit: u8,
        conflict: bool,
    }

    impl TransitionSystem for NaWriters {
        type State = Vec<u8>;
        type Behavior = Vec<u8>;

        fn initial_state(&self) -> Vec<u8> {
            vec![0; self.agents]
        }

        fn agent_groups(&self, st: &Vec<u8>) -> Vec<AgentGroup<Vec<u8>, Vec<u8>>> {
            (0..self.agents)
                .filter(|&i| st[i] < self.limit)
                .map(|i| {
                    let mut next = st.clone();
                    next[i] += 1;
                    let loc = if self.conflict { 0 } else { i };
                    AgentGroup {
                        agent: i,
                        transitions: vec![Transition::state(next)],
                        shared_pure: false,
                        local: false,
                        na_write: Some(fp64(&loc)),
                        shared_read: None,
                        atomic_write: None,
                    }
                })
                .collect()
        }

        fn terminal_behavior(&self, st: &Vec<u8>) -> Option<Vec<u8>> {
            st.iter().all(|&c| c == self.limit).then(|| st.clone())
        }
    }

    #[test]
    fn na_write_commutation_prunes_redundant_interleavings() {
        let sys = NaWriters {
            agents: 4,
            limit: 3,
            conflict: false,
        };
        let full = explore(&sys, &cfg(1, false));
        let reduced = explore(&sys, &cfg(1, true));
        assert_eq!(full.behaviors, reduced.behaviors);
        // Distinct-location NA writes form a product grid: every state
        // stays reachable (4^4 = 256), but sleep sets cut the
        // duplicate arrivals and the transitions enumerated.
        assert_eq!(full.stats.states, 256);
        assert_eq!(reduced.stats.states, 256);
        assert!(reduced.stats.na_commutes > 0);
        assert_eq!(reduced.stats.ample_commits, 0, "nothing is local here");
        assert!(reduced.stats.sleep_skips > 0);
        assert!(
            reduced.stats.dedup_hits * 2 < full.stats.dedup_hits,
            "reduced {} vs full {}",
            reduced.stats.dedup_hits,
            full.stats.dedup_hits
        );
        assert!(reduced.stats.transitions < full.stats.transitions);
    }

    #[test]
    fn same_location_na_writes_do_not_commute() {
        let sys = NaWriters {
            agents: 3,
            limit: 2,
            conflict: true,
        };
        let full = explore(&sys, &cfg(1, false));
        let reduced = explore(&sys, &cfg(1, true));
        assert_eq!(full.behaviors, reduced.behaviors);
        assert_eq!(reduced.stats.na_commutes, 0);
        assert_eq!(reduced.stats.sleep_skips, 0);
        assert_eq!(reduced.stats.states, full.stats.states);
        assert_eq!(reduced.stats.transitions, full.stats.transitions);
    }

    #[test]
    fn na_writer_does_not_put_pure_readers_to_sleep() {
        // Agent 0 purely reads the cell; agent 1 writes it
        // non-atomically. If the NA rule unsoundly granted
        // write-vs-read commutation, the read-before-write behavior
        // (0, 1) would be lost under reduction.
        struct NaWriteVsRead;
        impl TransitionSystem for NaWriteVsRead {
            type State = (u8, bool, u8);
            type Behavior = (u8, u8);
            fn initial_state(&self) -> Self::State {
                (255, false, 0)
            }
            fn agent_groups(
                &self,
                st: &Self::State,
            ) -> Vec<AgentGroup<Self::State, Self::Behavior>> {
                let mut out = Vec::new();
                if st.0 == 255 {
                    out.push(AgentGroup {
                        agent: 0,
                        transitions: vec![Transition::state((st.2, st.1, st.2))],
                        shared_pure: true,
                        local: false,
                        na_write: None,
                        shared_read: Some(fp64(&0)),
                        atomic_write: None,
                    });
                }
                if !st.1 {
                    out.push(AgentGroup {
                        agent: 1,
                        transitions: vec![Transition::state((st.0, true, 1))],
                        shared_pure: false,
                        local: false,
                        na_write: Some(fp64(&0)),
                        shared_read: None,
                        atomic_write: None,
                    });
                }
                out
            }
            fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior> {
                (st.0 != 255 && st.1).then_some((st.0, st.2))
            }
        }
        let want: BTreeSet<(u8, u8)> = [(0, 1), (1, 1)].into_iter().collect();
        for reduction in [false, true] {
            let r = explore(&NaWriteVsRead, &cfg(1, reduction));
            assert_eq!(r.behaviors, want, "reduction={reduction}");
        }
    }

    #[test]
    fn pure_reader_does_not_put_na_writer_to_sleep() {
        // The symmetric direction of the test above (the asymmetry
        // noted in the sleep-propagation docs): here the *writer* is
        // agent 0 and is enumerated first, so it is the
        // earlier-expanded sibling when the reader's grants are
        // computed. If the relation unsoundly commuted a same-location
        // read/write pair in this direction, the writer would sleep in
        // the reader's subtree and the write-after-read behavior
        // (0, 1) would be lost.
        struct ReadVsNaWrite;
        impl TransitionSystem for ReadVsNaWrite {
            type State = (u8, bool, u8);
            type Behavior = (u8, u8);
            fn initial_state(&self) -> Self::State {
                (255, false, 0)
            }
            fn agent_groups(
                &self,
                st: &Self::State,
            ) -> Vec<AgentGroup<Self::State, Self::Behavior>> {
                let mut out = Vec::new();
                if !st.1 {
                    out.push(AgentGroup {
                        agent: 0,
                        transitions: vec![Transition::state((st.0, true, 1))],
                        shared_pure: false,
                        local: false,
                        na_write: Some(fp64(&0)),
                        shared_read: None,
                        atomic_write: None,
                    });
                }
                if st.0 == 255 {
                    out.push(AgentGroup {
                        agent: 1,
                        transitions: vec![Transition::state((st.2, st.1, st.2))],
                        shared_pure: true,
                        local: false,
                        na_write: None,
                        shared_read: Some(fp64(&0)),
                        atomic_write: None,
                    });
                }
                out
            }
            fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior> {
                (st.0 != 255 && st.1).then_some((st.0, st.2))
            }
        }
        let want: BTreeSet<(u8, u8)> = [(0, 1), (1, 1)].into_iter().collect();
        for reduction in [false, true] {
            let r = explore(&ReadVsNaWrite, &cfg(1, reduction));
            assert_eq!(r.behaviors, want, "reduction={reduction}");
        }
    }

    #[test]
    fn distinct_location_read_and_write_commute() {
        // Reader on location 1, NA writer on location 0: the pair is
        // independent via the read rule, so reduction must fire
        // (read_commutes > 0) while preserving the single behavior.
        struct DisjointReadWrite;
        impl TransitionSystem for DisjointReadWrite {
            type State = (u8, bool);
            type Behavior = (u8, bool);
            fn initial_state(&self) -> Self::State {
                (255, false)
            }
            fn agent_groups(
                &self,
                st: &Self::State,
            ) -> Vec<AgentGroup<Self::State, Self::Behavior>> {
                let mut out = Vec::new();
                if st.0 == 255 {
                    out.push(AgentGroup {
                        agent: 0,
                        // Reads location 1, which is constantly 7.
                        transitions: vec![Transition::state((7, st.1))],
                        shared_pure: true,
                        local: false,
                        na_write: None,
                        shared_read: Some(fp64(&1)),
                        atomic_write: None,
                    });
                }
                if !st.1 {
                    out.push(AgentGroup {
                        agent: 1,
                        transitions: vec![Transition::state((st.0, true))],
                        shared_pure: false,
                        local: false,
                        na_write: Some(fp64(&0)),
                        shared_read: None,
                        atomic_write: None,
                    });
                }
                out
            }
            fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior> {
                (st.0 != 255 && st.1).then_some(*st)
            }
        }
        let full = explore(&DisjointReadWrite, &cfg(1, false));
        let reduced = explore(&DisjointReadWrite, &cfg(1, true));
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(reduced.stats.read_commutes > 0);
        assert!(reduced.stats.sleep_skips > 0);
        // With the read rule switched off the pair is treated as
        // dependent again: no read grants, same behaviors.
        let mut no_read = cfg(1, true);
        no_read.rules.shared_read = false;
        let r = explore(&DisjointReadWrite, &no_read);
        assert_eq!(r.behaviors, full.behaviors);
        assert_eq!(r.stats.read_commutes, 0);
    }

    #[test]
    fn atomic_write_rule_commutes_distinct_locations_when_enabled() {
        // Like `NaWriters` but claiming `atomic_write`: the systems
        // that may claim it guarantee canonical state equality, which
        // this toy system satisfies trivially (its state is the
        // counter vector). The rule must prune like the NA rule and
        // switch off independently.
        struct AtomicWriters;
        impl TransitionSystem for AtomicWriters {
            type State = Vec<u8>;
            type Behavior = Vec<u8>;
            fn initial_state(&self) -> Vec<u8> {
                vec![0; 3]
            }
            fn agent_groups(&self, st: &Vec<u8>) -> Vec<AgentGroup<Vec<u8>, Vec<u8>>> {
                (0..3)
                    .filter(|&i| st[i] < 2)
                    .map(|i| {
                        let mut next = st.clone();
                        next[i] += 1;
                        AgentGroup {
                            agent: i,
                            transitions: vec![Transition::state(next)],
                            shared_pure: false,
                            local: false,
                            na_write: None,
                            shared_read: None,
                            atomic_write: Some(fp64(&i)),
                        }
                    })
                    .collect()
            }
            fn terminal_behavior(&self, st: &Vec<u8>) -> Option<Vec<u8>> {
                st.iter().all(|&c| c == 2).then(|| st.clone())
            }
        }
        let full = explore(&AtomicWriters, &cfg(1, false));
        let reduced = explore(&AtomicWriters, &cfg(1, true));
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(reduced.stats.atomic_commutes > 0);
        assert_eq!(reduced.stats.na_commutes, 0);
        assert!(reduced.stats.transitions < full.stats.transitions);
        let mut no_atomic = cfg(1, true);
        no_atomic.rules.atomic_write = false;
        let r = explore(&AtomicWriters, &no_atomic);
        assert_eq!(r.behaviors, full.behaviors);
        assert_eq!(r.stats.atomic_commutes, 0);
        assert_eq!(r.stats.transitions, full.stats.transitions);
    }

    #[test]
    fn emissions_and_tags_are_counted() {
        let r = explore(&EmitChain, &cfg(1, false));
        let want: BTreeSet<&str> = ["ub", "done"].into_iter().collect();
        assert_eq!(r.behaviors, want);
        assert_eq!(r.stats.racy_steps, 1);
        assert_eq!(r.stats.promise_steps, 1);
        assert_eq!(r.stats.pruned, 1);
        assert_eq!(r.stats.states, 4);
    }

    #[test]
    fn state_budget_drains_frontier_terminals() {
        // A 2-wide diamond: budget of 2 stops after expanding the root
        // and one branch, but the other branch's terminal must still
        // be collected by the drain pass.
        struct Diamond;
        impl TransitionSystem for Diamond {
            type State = u8;
            type Behavior = u8;
            fn initial_state(&self) -> u8 {
                0
            }
            fn agent_groups(&self, st: &u8) -> Vec<AgentGroup<u8, u8>> {
                if *st == 0 {
                    vec![AgentGroup {
                        agent: 0,
                        transitions: vec![Transition::state(1), Transition::state(2)],
                        shared_pure: false,
                        local: false,
                        na_write: None,
                        shared_read: None,
                        atomic_write: None,
                    }]
                } else {
                    vec![]
                }
            }
            fn terminal_behavior(&self, st: &u8) -> Option<u8> {
                (*st > 0).then_some(*st)
            }
        }
        let r = explore(
            &Diamond,
            &ExploreConfig {
                max_states: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(r.stats.truncated);
        assert_eq!(r.stats.stop, StopReason::StateBudget);
        let want: BTreeSet<u8> = [1, 2].into_iter().collect();
        assert_eq!(r.behaviors, want, "frontier terminals were dropped");
    }

    #[test]
    fn bfs_and_iterative_deepening_agree_with_dfs() {
        let sys = Counters {
            agents: 2,
            limit: 4,
        };
        let dfs = explore(&sys, &cfg(1, true));
        for strategy in [
            Strategy::Bfs,
            Strategy::IterativeDeepening {
                initial: 2,
                step: 2,
            },
        ] {
            let r = explore(
                &sys,
                &ExploreConfig {
                    strategy: strategy.clone(),
                    ..cfg(2, true)
                },
            );
            assert_eq!(r.behaviors, dfs.behaviors, "{strategy:?}");
            assert!(!r.stats.truncated, "{strategy:?}");
        }
    }

    #[test]
    fn random_walks_reach_the_terminal() {
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                strategy: Strategy::RandomWalk {
                    walks: 8,
                    seed: 0xDECAF,
                },
                ..ExploreConfig::default()
            },
        );
        assert!(r.behaviors.contains(&vec![2, 2]));
        assert!(r.stats.truncated, "walks are never exhaustive");
    }

    #[test]
    fn visited_modes_agree() {
        let sys = Counters {
            agents: 3,
            limit: 2,
        };
        let base = explore(&sys, &cfg(1, true));
        for mode in [VisitedMode::Fp128, VisitedMode::Exact] {
            let r = explore(
                &sys,
                &ExploreConfig {
                    visited: mode,
                    ..cfg(1, true)
                },
            );
            assert_eq!(r.behaviors, base.behaviors, "{mode:?}");
            assert_eq!(r.stats.states, base.stats.states, "{mode:?}");
        }
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                deadline: Some(Duration::ZERO),
                workers: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(r.stats.deadline_hit);
        assert!(r.stats.truncated);
        assert_eq!(r.stats.stop, StopReason::DeadlineExpired);
    }

    #[test]
    fn depth_bound_truncates() {
        let sys = Counters {
            agents: 1,
            limit: 10,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                max_depth: 3,
                ..ExploreConfig::default()
            },
        );
        assert!(r.stats.truncated);
        assert!(r.behaviors.is_empty());
    }

    #[test]
    fn worker_stats_cover_all_states() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let r = explore(&sys, &cfg(4, false));
        assert_eq!(r.stats.worker_states.len(), 4);
        assert_eq!(r.stats.worker_states.iter().sum::<usize>(), r.stats.states);
    }

    // -- fault tolerance ---------------------------------------------------

    #[test]
    fn transient_panic_is_retried_and_recovered() {
        quiet_panics();
        let want = explore(
            &Counters {
                agents: 2,
                limit: 2,
            },
            &cfg(1, false),
        )
        .behaviors;
        for workers in [1, 4] {
            let sys = PanicOn {
                inner: Counters {
                    agents: 2,
                    limit: 2,
                },
                victim: vec![1, 0],
                transient: Some(1),
                hits: AtomicUsize::new(0),
            };
            let r = explore(&sys, &cfg(workers, false));
            assert_eq!(r.behaviors, want, "workers={workers}");
            assert_eq!(r.stats.incident_count, 1, "workers={workers}");
            assert_eq!(r.stats.retried, 1, "workers={workers}");
            assert_eq!(r.stats.quarantined, 0, "workers={workers}");
            assert!(!r.stats.fault_free());
            assert!(!r.stats.incidents.is_empty());
            assert_eq!(r.stats.incidents[0].kind, IncidentKind::ExpansionPanic);
        }
    }

    #[test]
    fn permanent_panic_quarantines_without_hanging() {
        quiet_panics();
        // 1-agent chain 0→1→2: a permanent panic at [1] quarantines it,
        // losing the terminal but never hanging or crashing the run.
        for workers in [1, 4] {
            let sys = PanicOn {
                inner: Counters {
                    agents: 1,
                    limit: 2,
                },
                victim: vec![1],
                transient: None,
                hits: AtomicUsize::new(0),
            };
            let r = explore(&sys, &cfg(workers, false));
            assert!(r.behaviors.is_empty(), "workers={workers}");
            assert_eq!(r.stats.quarantined, 1, "workers={workers}");
            assert_eq!(r.stats.incident_count, 2, "attempt 0 + 1 retry");
        }
    }

    #[test]
    fn panic_on_one_branch_keeps_other_branches() {
        quiet_panics();
        // Two independent agents; [1,0] is permanently poisoned. The
        // path through [0,1] must still reach the terminal... it can't
        // (all interleavings pass through a poisoned state's subtree
        // only if reachable solely through it). Use 2 agents where the
        // victim is off the only path to SOME behaviors but not all:
        // here every path to [1,1] goes via [1,0] or [0,1], so the
        // terminal survives via [0,1].
        let sys = PanicOn {
            inner: Counters {
                agents: 2,
                limit: 1,
            },
            victim: vec![1, 0],
            transient: None,
            hits: AtomicUsize::new(0),
        };
        let r = explore(&sys, &cfg(1, false));
        let want: BTreeSet<Vec<u8>> = [vec![1, 1]].into_iter().collect();
        assert_eq!(r.behaviors, want, "behavior reachable around the fault");
        assert_eq!(r.stats.quarantined, 1);
    }

    #[test]
    fn reduction_proviso_respects_quarantined_states() {
        quiet_panics();
        // With reduction on, ample sets must not hide behaviors when a
        // state is quarantined: the surviving interleavings still
        // reach the terminal.
        let sys = PanicOn {
            inner: Counters {
                agents: 3,
                limit: 2,
            },
            victim: vec![1, 0, 0],
            transient: Some(1),
            hits: AtomicUsize::new(0),
        };
        let r = explore(&sys, &cfg(1, true));
        let want: BTreeSet<Vec<u8>> = [vec![2, 2, 2]].into_iter().collect();
        assert_eq!(r.behaviors, want);
        assert_eq!(r.stats.quarantined, 0);
        assert_eq!(r.stats.retried, 1);
    }

    #[test]
    fn memory_budget_downgrades_instead_of_aborting() {
        // 64 exact states of Vec<u8> blow a 3.5 kB budget; fp64 fits.
        // The run must complete exactly, two rungs down.
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want = explore(&sys, &cfg(1, false)).behaviors;
        let r = explore(
            &sys,
            &ExploreConfig {
                visited: VisitedMode::Exact,
                max_memory: Some(3500),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, want);
        assert_eq!(r.stats.downgrades, 2, "exact→fp128→fp64");
        assert!(!r.stats.truncated);
        assert_eq!(r.stats.stop, StopReason::Completed);
        assert!(r
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::MemoryDowngrade { from: "exact", .. })));
    }

    #[test]
    fn memory_exhaustion_stops_at_last_rung() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                max_memory: Some(100),
                ..cfg(1, false)
            },
        );
        assert!(r.stats.truncated);
        assert_eq!(r.stats.stop, StopReason::MemoryBudget);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let full = explore(&sys, &cfg(1, true));
        let path = temp_path("resume-equality.ckpt");
        std::fs::remove_file(&path).ok();

        // First leg: interrupt via a tiny state budget.
        let r1 = explore(
            &sys,
            &ExploreConfig {
                max_states: 5,
                checkpoint: Some(CheckpointSpec::new(&path)),
                ..cfg(1, true)
            },
        );
        assert!(r1.stats.truncated);
        assert_eq!(r1.stats.stop, StopReason::StateBudget);
        assert_eq!(r1.stats.checkpoint_saves, 1);

        // Resume legs until the search completes.
        let mut last = None;
        for leg in 0..64 {
            let r = explore(
                &sys,
                &ExploreConfig {
                    max_states: 5,
                    checkpoint: Some(CheckpointSpec::new(&path)),
                    resume: Some(path.clone()),
                    ..cfg(1, true)
                },
            );
            assert!(r.stats.resumed, "leg {leg} did not resume");
            let done = !r.stats.truncated;
            last = Some(r);
            if done {
                break;
            }
        }
        let last = last.unwrap();
        assert!(!last.stats.truncated, "never completed");
        assert_eq!(last.behaviors, full.behaviors);
        assert_eq!(last.stats.states, full.stats.states, "cumulative counters");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn periodic_checkpoints_are_written() {
        let sys = Counters {
            agents: 4,
            limit: 4,
        };
        let path = temp_path("periodic.ckpt");
        std::fs::remove_file(&path).ok();
        let r = explore(
            &sys,
            &ExploreConfig {
                checkpoint: Some(CheckpointSpec::new(&path).every(Duration::ZERO)),
                ..cfg(1, false)
            },
        );
        assert!(!r.stats.truncated);
        assert!(
            r.stats.checkpoint_saves > 1,
            "periodic saves: {}",
            r.stats.checkpoint_saves
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_resume_falls_back_fresh_with_warning() {
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let want = explore(&sys, &cfg(1, true)).behaviors;
        for (name, contents) in [
            ("zero.ckpt", &b""[..]),
            ("garbage.ckpt", &b"SQWMgarbage-not-a-checkpoint"[..]),
        ] {
            let path = temp_path(name);
            std::fs::write(&path, contents).unwrap();
            let r = explore(
                &sys,
                &ExploreConfig {
                    resume: Some(path.clone()),
                    ..cfg(1, true)
                },
            );
            assert!(!r.stats.resumed, "{name}");
            assert_eq!(r.behaviors, want, "{name}");
            assert!(
                r.stats
                    .warnings
                    .iter()
                    .any(|w| matches!(w, ExploreWarning::ResumeCorrupt { .. })),
                "{name}: {:?}",
                r.stats.warnings
            );
            std::fs::remove_file(&path).ok();
        }
        // Missing file → unreadable, also fresh.
        let missing = temp_path("no-such-file.ckpt");
        std::fs::remove_file(&missing).ok();
        let r = explore(
            &sys,
            &ExploreConfig {
                resume: Some(missing),
                ..cfg(1, true)
            },
        );
        assert_eq!(r.behaviors, want);
        assert!(r
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::ResumeUnreadable { .. })));
    }

    #[test]
    fn resume_rejects_checkpoint_of_different_system() {
        let path = temp_path("mismatch.ckpt");
        std::fs::remove_file(&path).ok();
        let a = Counters {
            agents: 2,
            limit: 2,
        };
        explore(
            &a,
            &ExploreConfig {
                checkpoint: Some(CheckpointSpec::new(&path)),
                ..cfg(1, true)
            },
        );
        let b = Counters {
            agents: 3,
            limit: 2,
        };
        let want = explore(&b, &cfg(1, true)).behaviors;
        let r = explore(
            &b,
            &ExploreConfig {
                resume: Some(path.clone()),
                ..cfg(1, true)
            },
        );
        assert!(!r.stats.resumed);
        assert_eq!(r.behaviors, want);
        assert!(r.stats.warnings.iter().any(|w| matches!(
            w,
            ExploreWarning::ResumeCorrupt {
                reason: CorruptReason::SystemMismatch,
                ..
            }
        )));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durability_requires_a_frontier_strategy() {
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let bad = ExploreConfig {
            strategy: Strategy::RandomWalk { walks: 2, seed: 1 },
            checkpoint: Some(CheckpointSpec::new(temp_path("never-written.ckpt"))),
            ..ExploreConfig::default()
        };
        assert!(matches!(
            try_explore(&sys, &bad),
            Err(ExploreError::UnsupportedStrategy { .. })
        ));
        // The infallible entry point degrades with a warning instead.
        let r = explore(&sys, &bad);
        assert_eq!(r.stats.checkpoint_saves, 0);
        assert!(r
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::DurabilityIgnored { .. })));
    }

    #[test]
    fn exact_resume_downgrades_with_warning() {
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let path = temp_path("exact-resume.ckpt");
        std::fs::remove_file(&path).ok();
        explore(
            &sys,
            &ExploreConfig {
                visited: VisitedMode::Exact,
                max_states: 3,
                checkpoint: Some(CheckpointSpec::new(&path)),
                ..cfg(1, true)
            },
        );
        let r = explore(
            &sys,
            &ExploreConfig {
                visited: VisitedMode::Exact,
                resume: Some(path.clone()),
                ..cfg(1, true)
            },
        );
        assert!(r.stats.resumed);
        assert!(r.stats.warnings.iter().any(|w| matches!(
            w,
            ExploreWarning::ResumeVisitedDowngrade {
                requested: "exact",
                ..
            }
        )));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_transient_faults_preserve_behaviors() {
        use crate::fault::FaultPlan;
        quiet_panics();
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want = explore(&sys, &cfg(1, false)).behaviors;
        for seed in [1, 2, 3] {
            let r = explore(
                &sys,
                &ExploreConfig {
                    fault: Some(FaultPlan::transient(seed, 300)),
                    ..cfg(2, false)
                },
            );
            assert_eq!(r.behaviors, want, "seed={seed}");
            assert_eq!(r.stats.quarantined, 0, "seed={seed}");
            assert!(r.stats.incident_count > 0, "seed={seed}: rate 30% hit 0/64");
            assert_eq!(r.stats.retried, r.stats.incident_count, "seed={seed}");
        }
    }

    // -- disk spill ---------------------------------------------------------

    fn temp_spill_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("seqwm-engine-{}", std::process::id()))
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn live_segments(dir: &PathBuf) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|e| e == "spill"))
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    #[test]
    fn spill_spills_before_downgrading() {
        // Same memory pressure as memory_budget_downgrades_...: with a
        // spill dir configured the engine must keep full precision by
        // pushing shards to disk instead of taking lossy rungs.
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want = explore(&sys, &cfg(1, false)).behaviors;
        let dir = temp_spill_dir("spill-first");
        let r = explore(
            &sys,
            &ExploreConfig {
                visited: VisitedMode::Exact,
                max_memory: Some(3500),
                shards: 1,
                spill: Some(SpillSpec::new(&dir)),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, want);
        assert_eq!(r.stats.downgrades, 0, "spill-first: no lossy rung taken");
        assert_eq!(r.stats.stop, StopReason::Completed);
        assert!(!r.stats.truncated);
        assert!(r.stats.spill_shards > 0);
        assert!(r.stats.spill_bytes > 0);
        assert!(
            live_segments(&dir).is_empty(),
            "completed runs delete their live segments"
        );
    }

    #[test]
    fn spill_results_match_in_ram() {
        let sys = Counters {
            agents: 4,
            limit: 3,
        };
        let base = explore(&sys, &cfg(1, false));
        let dir = temp_spill_dir("spill-equal");
        let r = explore(
            &sys,
            &ExploreConfig {
                shards: 2,
                spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, base.behaviors);
        assert_eq!(r.stats.states, base.stats.states, "bit-identical counts");
        assert_eq!(r.stats.dedup_hits, base.stats.dedup_hits);
        assert!(r.stats.spill_shards > 0);
        assert!(r.stats.spill_probes > 0, "revisits must probe disk");
        assert!(r.stats.spill_hits > 0);
        assert_eq!(r.stats.spill_quarantined, 0);
    }

    #[test]
    fn frontier_spill_preserves_dfs_results() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let base = explore(&sys, &cfg(1, false));
        let dir = temp_spill_dir("frontier-spill");
        let r = explore(
            &sys,
            &ExploreConfig {
                shards: 1,
                spill: Some(SpillSpec::new(&dir).frontier_threshold(2)),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, base.behaviors);
        assert_eq!(r.stats.states, base.stats.states, "LIFO reload keeps order");
        assert_eq!(r.stats.dedup_hits, base.stats.dedup_hits);
        assert!(!r.stats.truncated);
        assert!(r.stats.spill_bytes > 0, "frontier segments were written");
    }

    #[test]
    fn corrupt_spill_segments_quarantine_on_resume() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want = explore(&sys, &cfg(1, false)).behaviors;
        let dir = temp_spill_dir("spill-corrupt");
        let ckpt = temp_path("spill-corrupt.ckpt");
        std::fs::remove_file(&ckpt).ok();
        let r1 = explore(
            &sys,
            &ExploreConfig {
                shards: 1,
                max_states: 40,
                checkpoint: Some(CheckpointSpec::new(&ckpt)),
                spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
                ..cfg(1, false)
            },
        );
        assert_eq!(r1.stats.stop, StopReason::StateBudget);
        let segs = live_segments(&dir);
        assert!(!segs.is_empty(), "interrupted durable run keeps segments");
        let mut bytes = std::fs::read(&segs[0]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&segs[0], &bytes).unwrap();
        let r2 = explore(
            &sys,
            &ExploreConfig {
                shards: 1,
                resume: Some(ckpt.clone()),
                spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
                ..cfg(1, false)
            },
        );
        assert!(r2.stats.resumed);
        assert_eq!(r2.behaviors, want, "verdict identical despite corruption");
        assert!(r2.stats.spill_quarantined > 0);
        assert!(r2
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillQuarantined { .. })));
        assert!(dir.join("quarantine").exists());
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn resume_without_spill_config_treats_segments_as_unvisited() {
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want = explore(&sys, &cfg(1, false)).behaviors;
        let dir = temp_spill_dir("spill-ignored");
        let ckpt = temp_path("spill-ignored.ckpt");
        std::fs::remove_file(&ckpt).ok();
        explore(
            &sys,
            &ExploreConfig {
                shards: 1,
                max_states: 40,
                checkpoint: Some(CheckpointSpec::new(&ckpt)),
                spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
                ..cfg(1, false)
            },
        );
        let r = explore(
            &sys,
            &ExploreConfig {
                shards: 1,
                resume: Some(ckpt.clone()),
                ..cfg(1, false)
            },
        );
        assert!(r.stats.resumed);
        assert_eq!(r.behaviors, want, "sound: segments re-explored, not lost");
        assert!(r
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillIgnored { .. })));
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn fresh_runs_clear_stale_spill_segments() {
        let dir = temp_spill_dir("spill-stale");
        let stale = dir.join("seg-0-99.spill");
        std::fs::write(&stale, b"junk from a previous run").unwrap();
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let r = explore(
            &sys,
            &ExploreConfig {
                spill: Some(SpillSpec::new(&dir)),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.stats.stop, StopReason::Completed);
        assert!(!stale.exists(), "stale segment pruned before the run");
    }

    #[test]
    fn spill_requires_a_frontier_strategy() {
        let sys = Counters {
            agents: 2,
            limit: 2,
        };
        let bad = ExploreConfig {
            strategy: Strategy::RandomWalk { walks: 2, seed: 1 },
            spill: Some(SpillSpec::new(temp_spill_dir("spill-badstrat"))),
            ..ExploreConfig::default()
        };
        assert!(matches!(
            try_explore(&sys, &bad),
            Err(ExploreError::UnsupportedStrategy { .. })
        ));
        let r = explore(&sys, &bad);
        assert_eq!(r.stats.spill_shards, 0);
        assert!(r
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::DurabilityIgnored { .. })));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_disk_full_falls_back_to_lossy_ladder() {
        use crate::fault::FaultPlan;
        let sys = Counters {
            agents: 3,
            limit: 3,
        };
        let want = explore(&sys, &cfg(1, false)).behaviors;
        let dir = temp_spill_dir("spill-enospc");
        let r = explore(
            &sys,
            &ExploreConfig {
                visited: VisitedMode::Exact,
                max_memory: Some(3500),
                shards: 1,
                spill: Some(SpillSpec::new(&dir)),
                fault: Some(FaultPlan {
                    disk_full_after_writes: Some(0),
                    ..FaultPlan::default()
                }),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, want);
        assert_eq!(r.stats.stop, StopReason::Completed);
        assert_eq!(r.stats.downgrades, 2, "fell back to the in-RAM ladder");
        assert_eq!(r.stats.spill_shards, 0);
        assert!(r
            .stats
            .warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillFailed { .. })));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn torn_spill_writes_are_lossless() {
        use crate::fault::FaultPlan;
        let sys = Counters {
            agents: 4,
            limit: 3,
        };
        let base = explore(&sys, &cfg(1, false));
        let dir = temp_spill_dir("spill-torn");
        let r = explore(
            &sys,
            &ExploreConfig {
                shards: 2,
                spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
                fault: Some(FaultPlan {
                    seed: 11,
                    disk_torn_write_per_mille: 500,
                    ..FaultPlan::default()
                }),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, base.behaviors);
        assert_eq!(
            r.stats.states, base.stats.states,
            "torn writes lose nothing"
        );
        assert_eq!(r.stats.stop, StopReason::Completed);
        assert!(r.stats.spill_quarantined > 0, "some writes were torn");
        assert!(r.stats.spill_shards > 0, "some writes landed");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_read_errors_only_cost_re_exploration() {
        use crate::fault::FaultPlan;
        let sys = Counters {
            agents: 4,
            limit: 3,
        };
        let base = explore(&sys, &cfg(1, false));
        let dir = temp_spill_dir("spill-read-err");
        let r = explore(
            &sys,
            &ExploreConfig {
                shards: 2,
                spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
                fault: Some(FaultPlan {
                    seed: 7,
                    disk_read_error_per_mille: 400,
                    ..FaultPlan::default()
                }),
                ..cfg(1, false)
            },
        );
        assert_eq!(r.behaviors, base.behaviors, "verdict unchanged");
        assert!(
            r.stats.states >= base.stats.states,
            "lost entries only re-explore: {} < {}",
            r.stats.states,
            base.stats.states
        );
        assert!(r.stats.spill_quarantined > 0);
        assert_eq!(r.stats.stop, StopReason::Completed);
    }

    // -- visited-set ladder accounting --------------------------------------

    #[test]
    fn degrade_preserves_entry_accounting() {
        let v: Visited<Vec<u8>> = Visited::new(VisitedMode::Exact, 4);
        let states: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i, i.wrapping_mul(3)]).collect();
        for (i, st) in states.iter().enumerate() {
            v.check_insert(st, (i as u64) & 0b111);
        }
        assert_eq!(v.entries.load(Ordering::Relaxed), states.len());
        assert!(v.request_downgrade().is_some());
        assert!(v.request_downgrade().is_some());
        assert!(v.request_downgrade().is_none(), "fp64 is the last rung");
        // Touch every state so each shard migrates to the new rung
        // (the sync path carries the debug_assert on pair counts).
        for st in &states {
            assert!(v.contains(st), "entry lost across degradation");
            v.check_insert(st, u64::MAX);
        }
        let total: usize = v.shards.iter().map(|s| relock(s).len()).sum();
        assert_eq!(
            v.entries.load(Ordering::Relaxed),
            total,
            "entry counter matches shard contents after exact→fp64"
        );
        assert_eq!(total, states.len(), "no collisions among 100 states");
    }

    #[test]
    fn visited_snapshot_round_trips_at_every_level() {
        for mode in [VisitedMode::Exact, VisitedMode::Fp128, VisitedMode::Fp64] {
            let v: Visited<Vec<u8>> = Visited::new(mode, 3);
            let states: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i, 7, i ^ 0x55]).collect();
            for st in &states {
                v.check_insert(st, 0b101);
            }
            let (level, visited64, visited128) = v.snapshot();
            assert_eq!(
                visited64.len() + visited128.len(),
                states.len(),
                "{mode:?}: dump kept every pair"
            );
            let data = CheckpointData {
                level,
                visited64,
                visited128,
                ..CheckpointData::default()
            };
            let (r, _warn) = Visited::restore(mode, 3, &data);
            assert_eq!(
                r.entries.load(Ordering::Relaxed),
                states.len(),
                "{mode:?}: restore kept every pair"
            );
            for st in &states {
                assert!(r.contains(st), "{mode:?}: entry lost in round trip");
            }
        }
    }
}
