//! Deterministic fault injection for hardening tests (feature
//! `fault-injection`).
//!
//! A [`FaultPlan`] decides, *per state fingerprint*, whether the
//! engine should suffer an injected panic, an artificial delay, or a
//! forced visited-set downgrade when that state is expanded. Decisions
//! are pure functions of `(seed, state fingerprint)` — derived with
//! the in-tree SplitMix64 mixer, never from a shared RNG stream — so
//! they are identical across worker counts, schedules, and reruns:
//! the same states fault no matter how the frontier is interleaved.
//!
//! Two panic flavors exist:
//!
//! * **transient** ([`FaultPlan::panic_per_mille`]) — the expansion
//!   panics on its first attempt only. The engine's retry path must
//!   recover it, so a run with transient faults must produce the
//!   *identical* behavior set as a fault-free run (checked by
//!   `tests/fault_injection.rs` over the whole corpus).
//! * **permanent** ([`FaultPlan::permanent_panic_per_mille`]) — every
//!   attempt panics and the state is quarantined. Behaviors reachable
//!   only through it are lost (and reported as incidents); behaviors
//!   reachable around it must survive.
//!
//! Injected panics carry an [`InjectedFault`] payload so test
//! harnesses can silence their backtrace noise without masking real
//! panics.

use std::time::Duration;

use crate::rng::mix64;

/// The panic payload used for injected faults.
///
/// Tests install a panic hook that drops messages whose payload is
/// this type and delegates everything else, keeping fault-injection
/// runs quiet without hiding genuine failures.
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// Fingerprint of the state whose expansion was failed.
    pub state_fp: u64,
    /// Whether the fault repeats on retry.
    pub permanent: bool,
}

/// A deterministic fault schedule, seeded by SplitMix64.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed; equal seeds fault equal state sets.
    pub seed: u64,
    /// Per-mille probability that a state's *first* expansion attempt
    /// panics (recovered by retry).
    pub panic_per_mille: u16,
    /// Per-mille probability that *every* expansion attempt of a
    /// state panics (the state ends up quarantined).
    pub permanent_panic_per_mille: u16,
    /// Per-mille probability that an expansion is delayed by
    /// [`delay`](Self::delay) first.
    pub delay_per_mille: u16,
    /// The injected delay.
    pub delay: Duration,
    /// Force one visited-set downgrade rung each time the distinct
    /// state count crosses a multiple of this value (simulated memory
    /// exhaustion driving the exact → fp128 → fp64 ladder).
    pub downgrade_every_states: Option<usize>,
    /// Per-mille probability that a spill-segment write is *torn*:
    /// only half the image lands on disk. The spill store's
    /// read-back-verify must catch it (quarantine, keep data in RAM).
    /// Keyed by the store's monotonic write index, not a fingerprint.
    pub disk_torn_write_per_mille: u16,
    /// Per-mille probability that a spill-segment read fails, keyed by
    /// the store's monotonic read index. The affected segment is
    /// quarantined and its fingerprints read as unvisited.
    pub disk_read_error_per_mille: u16,
    /// Simulated ENOSPC: every spill write from the Nth onward fails
    /// and disables the store (the engine falls back to the in-RAM
    /// lossy ladder).
    pub disk_full_after_writes: Option<u64>,
    /// Plant an *unsound* independence rule: same-location
    /// atomic-write pairs are mis-flagged as commuting, so the sleep
    /// sets prune interleavings whose behaviors genuinely differ.
    /// Unlike the knobs above this is not a fault the engine should
    /// tolerate — it exists so the POR soundness battery can prove it
    /// detects a broken rule (`tests/validation_catches_bugs.rs`).
    pub unsound_atomic_independence: bool,
}

impl FaultPlan {
    /// A plan injecting transient panics at `per_mille`‰ of states.
    pub fn transient(seed: u64, per_mille: u16) -> Self {
        FaultPlan {
            seed,
            panic_per_mille: per_mille,
            ..FaultPlan::default()
        }
    }

    fn roll(&self, state_fp: u64, salt: u64) -> u64 {
        mix64(self.seed ^ mix64(state_fp ^ mix64(salt))) % 1000
    }

    /// Should expansion attempt `attempt` of this state panic?
    pub fn injects_panic(&self, state_fp: u64, attempt: u8) -> Option<InjectedFault> {
        if self.roll(state_fp, 0xFA01) < u64::from(self.permanent_panic_per_mille) {
            return Some(InjectedFault {
                state_fp,
                permanent: true,
            });
        }
        if attempt == 0 && self.roll(state_fp, 0xFA02) < u64::from(self.panic_per_mille) {
            return Some(InjectedFault {
                state_fp,
                permanent: false,
            });
        }
        None
    }

    /// The delay (if any) to impose before expanding this state.
    pub fn injects_delay(&self, state_fp: u64) -> Option<Duration> {
        (self.roll(state_fp, 0xFA03) < u64::from(self.delay_per_mille)).then_some(self.delay)
    }

    /// Should the `write_idx`-th spill write be torn (half the bytes)?
    pub fn injects_torn_write(&self, write_idx: u64) -> bool {
        self.roll(write_idx, 0xFA04) < u64::from(self.disk_torn_write_per_mille)
    }

    /// Should the `read_idx`-th spill read fail?
    pub fn injects_read_error(&self, read_idx: u64) -> bool {
        self.roll(read_idx, 0xFA05) < u64::from(self.disk_read_error_per_mille)
    }

    /// Should the `write_idx`-th spill write hit simulated ENOSPC?
    pub fn injects_disk_full(&self, write_idx: u64) -> bool {
        self.disk_full_after_writes.is_some_and(|n| write_idx >= n)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::transient(1, 200);
        let b = FaultPlan::transient(2, 200);
        let hits_a: Vec<bool> = (0..500)
            .map(|fp| a.injects_panic(fp, 0).is_some())
            .collect();
        let hits_a2: Vec<bool> = (0..500)
            .map(|fp| a.injects_panic(fp, 0).is_some())
            .collect();
        let hits_b: Vec<bool> = (0..500)
            .map(|fp| b.injects_panic(fp, 0).is_some())
            .collect();
        assert_eq!(hits_a, hits_a2, "same seed, same faults");
        assert_ne!(hits_a, hits_b, "different seed, different faults");
        let rate = hits_a.iter().filter(|&&h| h).count();
        assert!((50..400).contains(&rate), "rate {rate} wildly off 20%");
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let plan = FaultPlan::transient(7, 1000);
        for fp in 0..50 {
            let first = plan.injects_panic(fp, 0).unwrap();
            assert!(!first.permanent);
            assert!(plan.injects_panic(fp, 1).is_none(), "retry must succeed");
        }
    }

    #[test]
    fn permanent_faults_persist() {
        let plan = FaultPlan {
            seed: 9,
            permanent_panic_per_mille: 1000,
            ..FaultPlan::default()
        };
        for fp in 0..50 {
            for attempt in 0..3 {
                assert!(plan.injects_panic(fp, attempt).unwrap().permanent);
            }
        }
    }

    #[test]
    fn disk_faults_are_deterministic_and_independent() {
        let plan = FaultPlan {
            seed: 5,
            disk_torn_write_per_mille: 300,
            disk_read_error_per_mille: 300,
            ..FaultPlan::default()
        };
        let torn: Vec<bool> = (0..500).map(|i| plan.injects_torn_write(i)).collect();
        let torn2: Vec<bool> = (0..500).map(|i| plan.injects_torn_write(i)).collect();
        let reads: Vec<bool> = (0..500).map(|i| plan.injects_read_error(i)).collect();
        assert_eq!(torn, torn2, "same seed, same faults");
        assert_ne!(torn, reads, "distinct salts, distinct schedules");
        let rate = torn.iter().filter(|&&h| h).count();
        assert!((75..450).contains(&rate), "rate {rate} wildly off 30%");
        let quiet = FaultPlan::default();
        assert!((0..500).all(|i| !quiet.injects_torn_write(i) && !quiet.injects_read_error(i)));
    }

    #[test]
    fn disk_full_fires_at_the_threshold() {
        let plan = FaultPlan {
            disk_full_after_writes: Some(3),
            ..FaultPlan::default()
        };
        assert!(!plan.injects_disk_full(0));
        assert!(!plan.injects_disk_full(2));
        assert!(plan.injects_disk_full(3));
        assert!(plan.injects_disk_full(100));
        assert!(!FaultPlan::default().injects_disk_full(100));
    }

    #[test]
    fn delays_follow_their_rate() {
        let plan = FaultPlan {
            seed: 3,
            delay_per_mille: 1000,
            delay: Duration::from_millis(1),
            ..FaultPlan::default()
        };
        assert_eq!(plan.injects_delay(42), Some(Duration::from_millis(1)));
        let none = FaultPlan::default();
        assert_eq!(none.injects_delay(42), None);
    }
}
