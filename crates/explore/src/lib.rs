//! `seqwm-explore`: a generic, parallel, deduplicated state-space
//! exploration engine.
//!
//! Every correctness claim in this reproduction — litmus behavior sets
//! (§5), optimizer validation, adequacy fuzzing (Thm. 6.2) — bottoms
//! out in a bounded-exhaustive state-space search. This crate factors
//! that search out of the individual semantics into one engine:
//!
//! * [`TransitionSystem`] — the interface a semantics implements:
//!   initial state, per-agent successor groups, terminal-behavior
//!   extraction. Implemented by the PS^na machine, the SC baseline
//!   (both in `seqwm-promising`) and the SEQ permission machine
//!   (`seqwm-seq`).
//! * [`explore`] / [`try_explore`] — the engine: fingerprint-sharded
//!   visited set ([`VisitedMode`]), sleep-set/ample-set interleaving
//!   reduction, a work-stealing parallel frontier on plain
//!   `std::thread`, pluggable strategies ([`Strategy`]) and budgets
//!   ([`ExploreConfig`]), and a structured [`ExploreStats`] report.
//! * **Fault tolerance** — panics in transition-system callbacks are
//!   caught, retried, and quarantined ([`ExploreIncident`]); long runs
//!   checkpoint to disk and resume ([`CheckpointSpec`]); a memory
//!   budget degrades the visited set instead of aborting
//!   ([`ExploreWarning::MemoryDowngrade`]). See the failure-model
//!   notes in `engine.rs` and the typed hierarchy in [`error`].
//! * [`SplitMix64`] — a dependency-free seeded PRNG for the random
//!   walk strategy and the litmus program generator.
//! * [`fp64`]/[`fp128`]/[`FxHasher`] — internal state fingerprinting.
//!
//! With the `fault-injection` feature, a deterministic [`FaultPlan`]
//! can force panics, delays, and visited-set downgrades on a seeded
//! subset of states — the repository's `tests/fault_injection.rs`
//! uses it to check that recovered faults never change behavior sets.
//!
//! The reduction never drops a behavior reachable by the unreduced
//! search (see the soundness notes on [`AgentGroup`] and in
//! `engine.rs`); the repository's `tests/explore_differential.rs`
//! checks this against the seed explorer over the full litmus corpus.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod checkpoint;
pub mod counters;
pub mod engine;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod fingerprint;
pub mod rng;
mod spill;
pub mod stats;
pub mod system;

pub use checkpoint::CHECKPOINT_VERSION;
pub use counters::CounterSnapshot;
pub use engine::{
    explore, try_explore, CheckpointSpec, ExploreConfig, ExploreResult, ReductionRules, Strategy,
    VisitedMode,
};
pub use error::{
    CorruptReason, ExploreError, ExploreIncident, ExploreWarning, IncidentKind, StopReason,
};
#[cfg(feature = "fault-injection")]
pub use fault::{FaultPlan, InjectedFault};
pub use fingerprint::{fp128, fp64, FxHasher};
pub use rng::{mix64, SplitMix64};
pub use spill::{SpillSpec, SPILL_VERSION};
pub use stats::ExploreStats;
pub use system::{
    groups_independent, AgentGroup, IndependenceRule, StepTags, Target, Transition,
    TransitionSystem,
};
