//! `seqwm-explore`: a generic, parallel, deduplicated state-space
//! exploration engine.
//!
//! Every correctness claim in this reproduction — litmus behavior sets
//! (§5), optimizer validation, adequacy fuzzing (Thm. 6.2) — bottoms
//! out in a bounded-exhaustive state-space search. This crate factors
//! that search out of the individual semantics into one engine:
//!
//! * [`TransitionSystem`] — the interface a semantics implements:
//!   initial state, per-agent successor groups, terminal-behavior
//!   extraction. Implemented by the PS^na machine, the SC baseline
//!   (both in `seqwm-promising`) and the SEQ permission machine
//!   (`seqwm-seq`).
//! * [`explore`] — the engine: fingerprint-sharded visited set
//!   ([`VisitedMode`]), sleep-set/ample-set interleaving reduction, a
//!   work-stealing parallel frontier on plain `std::thread`, pluggable
//!   strategies ([`Strategy`]) and budgets ([`ExploreConfig`]), and a
//!   structured [`ExploreStats`] report.
//! * [`SplitMix64`] — a dependency-free seeded PRNG for the random
//!   walk strategy and the litmus program generator.
//! * [`fp64`]/[`fp128`]/[`FxHasher`] — internal state fingerprinting.
//!
//! The reduction never drops a behavior reachable by the unreduced
//! search (see the soundness notes on [`AgentGroup`] and in
//! `engine.rs`); the repository's `tests/explore_differential.rs`
//! checks this against the seed explorer over the full litmus corpus.

#![warn(missing_docs)]

pub mod engine;
pub mod fingerprint;
pub mod rng;
pub mod stats;
pub mod system;

pub use engine::{explore, ExploreConfig, ExploreResult, Strategy, VisitedMode};
pub use fingerprint::{fp128, fp64, FxHasher};
pub use rng::{mix64, SplitMix64};
pub use stats::ExploreStats;
pub use system::{AgentGroup, StepTags, Target, Transition, TransitionSystem};
