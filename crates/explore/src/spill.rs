//! Out-of-core spill of visited-set shards and frontier segments.
//!
//! When the visited set (or a single worker's frontier) outgrows its
//! in-RAM budget, whole shards are written to `<spill-dir>/` as
//! CRC-framed *segments* — the same length-prefixed, fp64-checksummed
//! framing the checkpoint codec uses — and replaced in RAM by a small
//! Bloom-style summary, so the degradation ladder becomes
//! **spill-first, lossy-last**: exact data moves to disk before any
//! precision is surrendered to the fp128/fp64 rungs.
//!
//! # Robustness contract
//!
//! * Every segment write is **read back and re-validated** before the
//!   in-RAM data is dropped. A torn, flipped, or truncated write is
//!   detected *at write time*, the bad file is quarantined to
//!   `<spill-dir>/quarantine/`, and the data stays in RAM — spilling
//!   under write faults is lossless.
//! * Disk-full and other I/O errors **disable** the store; the engine
//!   falls back to the in-RAM lossy ladder instead of aborting.
//! * A segment that fails validation when *probed* (corruption after
//!   a successful write) is quarantined and its fingerprints are
//!   conservatively treated as unvisited. This is sound: a missing
//!   visited entry can only cause re-exploration, and every skipped
//!   interleaving is still covered either by the sibling subtree
//!   explored before the loss or by the re-exploration after it. The
//!   cost is time, never behaviors.
//!
//! # Segment format (all integers little-endian)
//!
//! ```text
//! magic    4  b"SQWS"
//! version  1  = 1
//! kind     1  1 = visited shard, 2 = frontier segment
//! level    1  visited: 1 = fp128, 2 = fp64; frontier: 0
//! shard    4  owning visited shard index (0 for frontier)
//! digest   8  fp64 of the initial state (system identity check)
//! count    8  number of records
//! records     visited fp64:  (fp u64, mask u64)
//!             visited fp128: (lo u64, hi u64, mask u64)
//!             frontier:      revisit u8, sleep u64, path len u32, u32×len
//! checksum 8  fp64 of every preceding byte
//! ```
//!
//! Writes go to a dot-prefixed temp file and are renamed into place.
//! Exact shards are fingerprinted to fp128 on spill (states carry no
//! serialization contract), mirroring the checkpoint codec.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::checkpoint::{put_path, put_u32, put_u64, Reader, SavedJob, LEVEL_FP128, LEVEL_FP64};
use crate::error::{CorruptReason, ExploreWarning};
use crate::fingerprint::fp64;
use crate::rng::mix64;

const MAGIC: &[u8; 4] = b"SQWS";
/// Current spill-segment format version.
pub const SPILL_VERSION: u8 = 1;
const KIND_VISITED: u8 = 1;
const KIND_FRONTIER: u8 = 2;
/// Cap on structured events buffered per run (counters keep counting).
const MAX_EVENTS: usize = 16;

/// Where (and under what budget) an exploration may spill cold
/// visited-set shards and frontier segments to disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillSpec {
    /// Directory segments are written under. Created on demand;
    /// corrupt segments move to `<dir>/quarantine/`.
    pub dir: PathBuf,
    /// Approximate in-RAM visited-set budget in bytes that triggers a
    /// spill. Defaults to [`ExploreConfig::max_memory`]
    /// (crate::ExploreConfig::max_memory), else 64 MiB.
    pub budget: Option<usize>,
    /// Single-worker DFS frontiers longer than this spill their cold
    /// half to disk.
    pub frontier_threshold: usize,
}

impl SpillSpec {
    /// A spec spilling under `dir` with default budgets.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillSpec {
            dir: dir.into(),
            budget: None,
            frontier_threshold: 4096,
        }
    }

    /// Sets the in-RAM budget (bytes) that triggers visited spills.
    pub fn budget_bytes(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Sets the frontier length that triggers frontier spills.
    pub fn frontier_threshold(mut self, jobs: usize) -> Self {
        self.frontier_threshold = jobs.max(2);
        self
    }
}

/// One spilled visited segment as recorded in a checkpoint manifest:
/// enough to re-adopt (and re-validate) the file on resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SpillSeg {
    /// Segment file name (validated: no path separators).
    pub name: String,
    /// Owning visited shard index.
    pub shard: u32,
    /// Fingerprint width: `LEVEL_FP128` or `LEVEL_FP64`.
    pub level: u8,
    /// Record count.
    pub entries: u64,
    /// The file's trailing fp64 checksum (identity across runs).
    pub checksum: u64,
}

/// Rejects hostile manifest names before they touch the filesystem:
/// plain file names only — no separators, no leading dot, no `..`.
pub(crate) fn valid_segment_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && !name.contains("..")
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Bloom summary
// ---------------------------------------------------------------------------

/// A tiny per-segment Bloom filter over fp64 keys (fp128 entries are
/// summarized by their low word, which *is* the state's fp64). Two
/// hash functions over a power-of-two bit array sized at ~16 bits per
/// entry: ≈1.4% false positives, zero false negatives — membership
/// probes only touch disk on summary hits.
struct Bloom {
    bits: Vec<u64>,
}

impl Bloom {
    fn for_entries(n: usize) -> Self {
        let words = (n / 4).next_power_of_two().clamp(2, 4096);
        Bloom {
            bits: vec![0u64; words],
        }
    }

    fn bit_mask(&self) -> u64 {
        (self.bits.len() as u64 * 64) - 1
    }

    fn set(&mut self, fp: u64) {
        for h in [fp, mix64(fp)] {
            let b = h & self.bit_mask();
            self.bits[(b / 64) as usize] |= 1 << (b % 64);
        }
    }

    fn maybe_contains(&self, fp: u64) -> bool {
        [fp, mix64(fp)].iter().all(|&h| {
            let b = h & self.bit_mask();
            self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
        })
    }
}

// ---------------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------------

/// A decoded segment payload (exactly one vector is populated).
#[derive(Default)]
struct SegmentData {
    kind: u8,
    level: u8,
    shard: u32,
    digest: u64,
    v64: Vec<(u64, u64)>,
    v128: Vec<(u128, u64)>,
    jobs: Vec<SavedJob>,
}

fn encode_header(out: &mut Vec<u8>, kind: u8, level: u8, shard: u32, digest: u64, count: u64) {
    out.extend_from_slice(MAGIC);
    out.push(SPILL_VERSION);
    out.push(kind);
    out.push(level);
    put_u32(out, shard);
    put_u64(out, digest);
    put_u64(out, count);
}

fn encode_visited(
    shard: u32,
    level: u8,
    digest: u64,
    v64: &[(u64, u64)],
    v128: &[(u128, u64)],
) -> Vec<u8> {
    let count = (v64.len() + v128.len()) as u64;
    let mut out = Vec::with_capacity(40 + v64.len() * 16 + v128.len() * 24);
    encode_header(&mut out, KIND_VISITED, level, shard, digest, count);
    if level == LEVEL_FP64 {
        for &(fp, mask) in v64 {
            put_u64(&mut out, fp);
            put_u64(&mut out, mask);
        }
    } else {
        for &(fp, mask) in v128 {
            put_u64(&mut out, fp as u64);
            put_u64(&mut out, (fp >> 64) as u64);
            put_u64(&mut out, mask);
        }
    }
    let sum = fp64(&out);
    put_u64(&mut out, sum);
    out
}

fn encode_frontier(digest: u64, jobs: &[SavedJob]) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + jobs.len() * 24);
    encode_header(&mut out, KIND_FRONTIER, 0, 0, digest, jobs.len() as u64);
    for j in jobs {
        out.push(u8::from(j.revisit));
        put_u64(&mut out, j.sleep);
        put_path(&mut out, &j.path);
    }
    let sum = fp64(&out);
    put_u64(&mut out, sum);
    out
}

fn decode_segment(buf: &[u8]) -> Result<SegmentData, CorruptReason> {
    if buf.len() < MAGIC.len() + 3 + 4 + 16 + 8 {
        return Err(CorruptReason::TooShort);
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(sum_bytes);
    if u64::from_le_bytes(sum) != fp64(&body) {
        return Err(CorruptReason::ChecksumMismatch);
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CorruptReason::BadMagic);
    }
    let version = r.u8()?;
    if version != SPILL_VERSION {
        return Err(CorruptReason::UnsupportedVersion(version));
    }
    let mut data = SegmentData {
        kind: r.u8()?,
        level: r.u8()?,
        shard: r.u32()?,
        digest: r.u64()?,
        ..SegmentData::default()
    };
    let count = r.u64()? as usize;
    match (data.kind, data.level) {
        (KIND_VISITED, LEVEL_FP64) => {
            if count.saturating_mul(16) > body.len() - r.pos {
                return Err(CorruptReason::Malformed("visited segment count"));
            }
            data.v64.reserve(count);
            for _ in 0..count {
                let fp = r.u64()?;
                let mask = r.u64()?;
                data.v64.push((fp, mask));
            }
        }
        (KIND_VISITED, LEVEL_FP128) => {
            if count.saturating_mul(24) > body.len() - r.pos {
                return Err(CorruptReason::Malformed("visited segment count"));
            }
            data.v128.reserve(count);
            for _ in 0..count {
                let lo = r.u64()?;
                let hi = r.u64()?;
                let mask = r.u64()?;
                data.v128.push((((hi as u128) << 64) | lo as u128, mask));
            }
        }
        (KIND_FRONTIER, 0) => {
            if count.saturating_mul(13) > body.len() - r.pos {
                return Err(CorruptReason::Malformed("frontier segment count"));
            }
            data.jobs.reserve(count);
            for _ in 0..count {
                let flags = r.u8()?;
                if flags > 1 {
                    return Err(CorruptReason::Malformed("frontier flags"));
                }
                let sleep = r.u64()?;
                let path = r.path()?;
                data.jobs.push(SavedJob {
                    revisit: flags == 1,
                    sleep,
                    path,
                });
            }
        }
        _ => return Err(CorruptReason::Malformed("segment kind/level")),
    }
    if r.pos != body.len() {
        return Err(CorruptReason::Malformed("trailing bytes"));
    }
    Ok(data)
}

/// The trailing checksum of an encoded segment (its manifest identity).
fn trailing_checksum(bytes: &[u8]) -> u64 {
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[bytes.len() - 8..]);
    u64::from_le_bytes(sum)
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// An adopted or freshly-written visited segment resident on disk.
struct Segment {
    name: String,
    path: PathBuf,
    level: u8,
    entries: u64,
    checksum: u64,
    bloom: Bloom,
}

struct FrontierSeg {
    path: PathBuf,
    jobs: u64,
}

/// Spill counters folded into [`ExploreStats`](crate::ExploreStats)
/// and the global counters when the run ends.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpillCounters {
    pub shards: u64,
    pub bytes: u64,
    pub probes: u64,
    pub hits: u64,
    pub quarantined: u64,
    pub frontier_lost: u64,
}

/// The per-run spill store: owns the directory, the per-shard segment
/// lists with their Bloom summaries, the frontier segment stack, and
/// the quarantine protocol. Attached to the engine's `Visited` set.
///
/// Lock order (deadlock discipline): a visited shard's mutex is always
/// taken *before* the corresponding segment-list mutex.
pub(crate) struct SpillStore {
    dir: PathBuf,
    quarantine_dir: PathBuf,
    digest: u64,
    trigger: usize,
    frontier_threshold: usize,
    nshards: usize,
    seq: AtomicU64,
    write_idx: AtomicU64,
    read_idx: AtomicU64,
    disabled: AtomicBool,
    segments: Vec<Mutex<Vec<Segment>>>,
    frontier: Mutex<Vec<FrontierSeg>>,
    shards_spilled: AtomicU64,
    bytes_spilled: AtomicU64,
    probes: AtomicU64,
    hits: AtomicU64,
    quarantined: AtomicU64,
    frontier_lost: AtomicU64,
    events: Mutex<Vec<ExploreWarning>>,
    #[cfg(feature = "fault-injection")]
    fault: Option<crate::fault::FaultPlan>,
}

impl SpillStore {
    /// Opens a store under `spec.dir`, creating the directory.
    pub(crate) fn open(
        spec: &SpillSpec,
        nshards: usize,
        digest: u64,
        trigger: usize,
        #[cfg(feature = "fault-injection")] fault: Option<crate::fault::FaultPlan>,
    ) -> Result<Self, String> {
        fs::create_dir_all(&spec.dir)
            .map_err(|e| format!("cannot create spill dir {}: {e}", spec.dir.display()))?;
        Ok(SpillStore {
            quarantine_dir: spec.dir.join("quarantine"),
            dir: spec.dir.clone(),
            digest,
            trigger,
            frontier_threshold: spec.frontier_threshold.max(2),
            nshards: nshards.max(1),
            seq: AtomicU64::new(0),
            write_idx: AtomicU64::new(0),
            read_idx: AtomicU64::new(0),
            disabled: AtomicBool::new(false),
            segments: (0..nshards.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            frontier: Mutex::new(Vec::new()),
            shards_spilled: AtomicU64::new(0),
            bytes_spilled: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            frontier_lost: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            #[cfg(feature = "fault-injection")]
            fault,
        })
    }

    /// Whether writes are still accepted (I/O failures disable them;
    /// existing segments remain probeable either way).
    pub(crate) fn enabled(&self) -> bool {
        !self.disabled.load(Ordering::Relaxed)
    }

    /// The in-RAM byte budget that triggers visited spills.
    pub(crate) fn trigger(&self) -> usize {
        self.trigger
    }

    /// The frontier length that triggers frontier spills.
    pub(crate) fn frontier_threshold(&self) -> usize {
        self.frontier_threshold
    }

    fn disable(&self, message: String) {
        if !self.disabled.swap(true, Ordering::Relaxed) {
            self.push_event(ExploreWarning::SpillFailed { message });
        }
    }

    fn push_event(&self, w: ExploreWarning) {
        let mut ev = relock(&self.events);
        if ev.len() < MAX_EVENTS {
            ev.push(w);
        }
    }

    /// Moves a corrupt segment file into `<dir>/quarantine/` (keeping
    /// its name, suffixing on collision; deleting as a last resort so
    /// a permanently corrupt file is never re-ingested) and records
    /// the event. The fingerprints it held are treated as unvisited —
    /// sound, just slower.
    fn quarantine(&self, path: &Path, message: String) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.push_event(ExploreWarning::SpillQuarantined {
            path: path.to_path_buf(),
            message,
        });
        if fs::create_dir_all(&self.quarantine_dir).is_err() {
            let _ = fs::remove_file(path);
            return;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("corrupt")
            .to_string();
        let mut dest = self.quarantine_dir.join(&name);
        let mut n = 0u32;
        while dest.exists() && n < 32 {
            n += 1;
            dest = self.quarantine_dir.join(format!("{name}.{n}"));
        }
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    /// Writes `bytes` to `name` atomically, honoring injected disk
    /// faults, then reads the file back and re-validates it so a torn
    /// write is caught while the data is still in RAM. Returns the
    /// decoded read-back on success.
    fn write_segment(&self, name: &str, bytes: &[u8]) -> Option<SegmentData> {
        let widx = self.write_idx.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault {
            if plan.injects_disk_full(widx) {
                self.disable("injected disk-full (ENOSPC)".to_string());
                return None;
            }
        }
        let _ = widx;
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!(".{name}.tmp"));
        #[allow(unused_mut)]
        let mut to_write: &[u8] = bytes;
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault {
            if plan.injects_torn_write(widx) {
                // A torn write lands half the image; read-back-verify
                // below must catch it and keep the data in RAM.
                to_write = &bytes[..bytes.len() / 2];
            }
        }
        if let Err(e) = fs::write(&tmp, to_write).and_then(|()| fs::rename(&tmp, &path)) {
            let _ = fs::remove_file(&tmp);
            self.disable(format!("segment write failed: {e}"));
            return None;
        }
        match fs::read(&path) {
            Err(e) => {
                self.quarantine(&path, format!("read-back failed: {e}"));
                None
            }
            Ok(back) => match decode_segment(&back) {
                Ok(data) if back == bytes => Some(data),
                Ok(_) => {
                    self.quarantine(&path, "read-back differs from written image".to_string());
                    None
                }
                Err(reason) => {
                    self.quarantine(&path, format!("read-back rejected: {reason}"));
                    None
                }
            },
        }
    }

    /// Spills one visited shard's pairs. Returns `true` iff the data
    /// is durably (and verifiably) on disk, i.e. the caller may drop
    /// it from RAM. On `false` the data must stay in RAM: either this
    /// write was torn (retry later) or the store disabled itself.
    pub(crate) fn write_shard(
        &self,
        shard: usize,
        level: u8,
        v64: &[(u64, u64)],
        v128: &[(u128, u64)],
    ) -> bool {
        if !self.enabled() || shard >= self.nshards {
            return false;
        }
        let bytes = encode_visited(shard as u32, level, self.digest, v64, v128);
        let name = format!(
            "seg-{shard}-{}.spill",
            self.seq.fetch_add(1, Ordering::Relaxed)
        );
        let Some(_) = self.write_segment(&name, &bytes) else {
            return false;
        };
        let mut bloom = Bloom::for_entries(v64.len() + v128.len());
        for &(fp, _) in v64 {
            bloom.set(fp);
        }
        for &(fp, _) in v128 {
            bloom.set(fp as u64);
        }
        let seg = Segment {
            path: self.dir.join(&name),
            name,
            level,
            entries: (v64.len() + v128.len()) as u64,
            checksum: trailing_checksum(&bytes),
            bloom,
        };
        relock(&self.segments[shard]).push(seg);
        self.shards_spilled.fetch_add(1, Ordering::Relaxed);
        self.bytes_spilled
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        true
    }

    /// Whether `shard` has any disk-resident segments (cheap pre-check
    /// so unspilled shards never pay probe overhead).
    pub(crate) fn has_segments(&self, shard: usize) -> bool {
        shard < self.nshards && !relock(&self.segments[shard]).is_empty()
    }

    /// Looks `fp` up in the shard's spilled segments, intersecting the
    /// sleep masks of every occurrence. The Bloom summary gates disk
    /// reads; a segment that fails validation (or suffers an injected
    /// read error) is quarantined and skipped — its entries read as
    /// unvisited.
    pub(crate) fn probe<F: FnOnce() -> u128>(
        &self,
        shard: usize,
        fp: u64,
        fp128_of: F,
    ) -> Option<u64> {
        if shard >= self.nshards {
            return None;
        }
        let mut segs = relock(&self.segments[shard]);
        if segs.is_empty() {
            return None;
        }
        let mut fp128_of = Some(fp128_of);
        let mut key128: Option<u128> = None;
        let mut found: Option<u64> = None;
        let mut i = 0;
        while i < segs.len() {
            if !segs[i].bloom.maybe_contains(fp) {
                i += 1;
                continue;
            }
            self.probes.fetch_add(1, Ordering::Relaxed);
            let ridx = self.read_idx.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = &self.fault {
                if plan.injects_read_error(ridx) {
                    let seg = segs.remove(i);
                    self.quarantine(&seg.path, "injected read error".to_string());
                    continue;
                }
            }
            let _ = ridx;
            let data = match fs::read(&segs[i].path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| {
                    decode_segment(&bytes)
                        .map_err(|r| r.to_string())
                        .and_then(|d| self.validate_visited(&d, &segs[i]).map(|()| d))
                }) {
                Ok(d) => d,
                Err(message) => {
                    let seg = segs.remove(i);
                    self.quarantine(&seg.path, message);
                    continue;
                }
            };
            let mask = if segs[i].level == LEVEL_FP64 {
                data.v64.iter().find(|&&(k, _)| k == fp).map(|&(_, m)| m)
            } else {
                let k = match key128 {
                    Some(k) => k,
                    None => {
                        let k = fp128_of.take().map(|f| f()).unwrap_or_default();
                        key128 = Some(k);
                        k
                    }
                };
                data.v128.iter().find(|&&(f2, _)| f2 == k).map(|&(_, m)| m)
            };
            if let Some(m) = mask {
                self.hits.fetch_add(1, Ordering::Relaxed);
                found = Some(found.map_or(m, |acc| acc & m));
            }
            i += 1;
        }
        found
    }

    fn validate_visited(&self, data: &SegmentData, seg: &Segment) -> Result<(), String> {
        if data.kind != KIND_VISITED {
            return Err("wrong segment kind".to_string());
        }
        if data.level != seg.level {
            return Err("segment level changed".to_string());
        }
        if data.digest != self.digest {
            return Err("segment belongs to a different system".to_string());
        }
        if (data.v64.len() + data.v128.len()) as u64 != seg.entries {
            return Err("segment entry count changed".to_string());
        }
        Ok(())
    }

    // -- frontier segments -------------------------------------------------

    /// Spills a batch of frontier jobs. `true` iff durably on disk.
    pub(crate) fn write_frontier(&self, jobs: &[SavedJob]) -> bool {
        if !self.enabled() || jobs.is_empty() {
            return false;
        }
        let bytes = encode_frontier(self.digest, jobs);
        let name = format!(
            "frontier-{}.spill",
            self.seq.fetch_add(1, Ordering::Relaxed)
        );
        if self.write_segment(&name, &bytes).is_none() {
            return false;
        }
        relock(&self.frontier).push(FrontierSeg {
            path: self.dir.join(&name),
            jobs: jobs.len() as u64,
        });
        self.bytes_spilled
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        true
    }

    /// Reloads the most recently spilled frontier segment (LIFO, which
    /// preserves DFS pop order exactly).
    pub(crate) fn pop_frontier(&self) -> FrontierLoad {
        let Some(seg) = relock(&self.frontier).pop() else {
            return FrontierLoad::Empty;
        };
        let ridx = self.read_idx.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault {
            if plan.injects_read_error(ridx) {
                self.quarantine(&seg.path, "injected read error".to_string());
                self.frontier_lost.fetch_add(seg.jobs, Ordering::Relaxed);
                return FrontierLoad::Lost(seg.jobs);
            }
        }
        let _ = ridx;
        match fs::read(&seg.path)
            .map_err(|e| e.to_string())
            .and_then(|b| decode_segment(&b).map_err(|r| r.to_string()))
        {
            Ok(data) if data.kind == KIND_FRONTIER && data.digest == self.digest => {
                let _ = fs::remove_file(&seg.path);
                FrontierLoad::Jobs(data.jobs)
            }
            Ok(_) => {
                self.quarantine(&seg.path, "wrong segment kind or system".to_string());
                self.frontier_lost.fetch_add(seg.jobs, Ordering::Relaxed);
                FrontierLoad::Lost(seg.jobs)
            }
            Err(message) => {
                self.quarantine(&seg.path, message);
                self.frontier_lost.fetch_add(seg.jobs, Ordering::Relaxed);
                FrontierLoad::Lost(seg.jobs)
            }
        }
    }

    /// Collects every disk-resident frontier job for a checkpoint.
    /// Non-finalizing calls (periodic saves) leave failures on disk
    /// untouched and report them, so the caller can skip the save and
    /// keep the previous complete checkpoint. Finalizing calls
    /// (the terminal save) quarantine failures and count them lost.
    pub(crate) fn frontier_collect(&self, finalize: bool) -> (Vec<SavedJob>, u64) {
        let mut segs = relock(&self.frontier);
        let mut jobs = Vec::new();
        let mut lost = 0u64;
        let mut i = 0;
        while i < segs.len() {
            match fs::read(&segs[i].path)
                .map_err(|e| e.to_string())
                .and_then(|b| decode_segment(&b).map_err(|r| r.to_string()))
            {
                Ok(data) if data.kind == KIND_FRONTIER && data.digest == self.digest => {
                    jobs.extend(data.jobs);
                    i += 1;
                }
                Ok(_) | Err(_) if !finalize => {
                    lost += segs[i].jobs;
                    i += 1;
                }
                Ok(_) => {
                    let seg = segs.remove(i);
                    self.quarantine(&seg.path, "wrong segment kind or system".to_string());
                    self.frontier_lost.fetch_add(seg.jobs, Ordering::Relaxed);
                    lost += seg.jobs;
                }
                Err(message) => {
                    let seg = segs.remove(i);
                    self.quarantine(&seg.path, message);
                    self.frontier_lost.fetch_add(seg.jobs, Ordering::Relaxed);
                    lost += seg.jobs;
                }
            }
        }
        (jobs, lost)
    }

    /// Deletes frontier segment files (after they were folded into a
    /// final checkpoint).
    pub(crate) fn drop_frontier(&self) {
        for seg in relock(&self.frontier).drain(..) {
            let _ = fs::remove_file(&seg.path);
        }
    }

    // -- manifest / adoption / cleanup -------------------------------------

    /// The shard count and segment manifest for a checkpoint.
    pub(crate) fn manifest(&self) -> (u32, Vec<SpillSeg>) {
        let mut out = Vec::new();
        for (shard, list) in self.segments.iter().enumerate() {
            for seg in relock(list).iter() {
                out.push(SpillSeg {
                    name: seg.name.clone(),
                    shard: shard as u32,
                    level: seg.level,
                    entries: seg.entries,
                    checksum: seg.checksum,
                });
            }
        }
        (self.nshards as u32, out)
    }

    /// Re-adopts the segments a checkpoint's manifest lists, validating
    /// each file end to end (CRC, digest, kind, level, count, and the
    /// manifest's recorded checksum — so a stale same-named file from
    /// another run can never be trusted). Missing or corrupt segments
    /// quarantine with a warning; their fingerprints are treated as
    /// unvisited, which is sound. Unlisted `*.spill` files (segments
    /// written after the checkpoint, whose children are not in its
    /// frontier) and all frontier segments are pruned — adopting them
    /// would be unsound.
    pub(crate) fn adopt(
        &self,
        shards_at_save: u32,
        manifest: &[SpillSeg],
        warnings: &mut Vec<ExploreWarning>,
    ) {
        let mut keep: Vec<&str> = Vec::new();
        if shards_at_save as usize != self.nshards && !manifest.is_empty() {
            // Shard placement is fp % nshards: a different shard count
            // would misfile every probe. Ignore the manifest (sound —
            // everything reads as unvisited) rather than guess.
            warnings.push(ExploreWarning::SpillIgnored {
                segments: manifest.len(),
            });
        } else {
            for entry in manifest {
                let shard = entry.shard as usize;
                if !valid_segment_name(&entry.name) || shard >= self.nshards {
                    warnings.push(ExploreWarning::SpillQuarantined {
                        path: self.dir.join("invalid-manifest-entry"),
                        message: "manifest entry rejected".to_string(),
                    });
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let path = self.dir.join(&entry.name);
                let validated = fs::read(&path).map_err(|e| e.to_string()).and_then(|b| {
                    let data = decode_segment(&b).map_err(|r| r.to_string())?;
                    if trailing_checksum(&b) != entry.checksum {
                        return Err("checksum differs from manifest".to_string());
                    }
                    if data.kind != KIND_VISITED
                        || data.level != entry.level
                        || data.shard != entry.shard
                        || data.digest != self.digest
                        || (data.v64.len() + data.v128.len()) as u64 != entry.entries
                    {
                        return Err("segment does not match manifest".to_string());
                    }
                    Ok(data)
                });
                match validated {
                    Ok(data) => {
                        let mut bloom = Bloom::for_entries(entry.entries as usize);
                        for &(fp, _) in &data.v64 {
                            bloom.set(fp);
                        }
                        for &(fp, _) in &data.v128 {
                            bloom.set(fp as u64);
                        }
                        relock(&self.segments[shard]).push(Segment {
                            name: entry.name.clone(),
                            path,
                            level: entry.level,
                            entries: entry.entries,
                            checksum: entry.checksum,
                            bloom,
                        });
                        keep.push(&entry.name);
                    }
                    Err(message) => {
                        warnings.push(ExploreWarning::SpillQuarantined {
                            path: path.clone(),
                            message: message.clone(),
                        });
                        self.quarantined.fetch_add(1, Ordering::Relaxed);
                        if path.exists() {
                            // Bypass push_event: the warning above
                            // already reaches the caller directly.
                            let _ = fs::create_dir_all(&self.quarantine_dir);
                            let dest = self.quarantine_dir.join(&entry.name);
                            if fs::rename(&path, &dest).is_err() {
                                let _ = fs::remove_file(&path);
                            }
                        }
                    }
                }
            }
        }
        self.prune_except(&keep);
    }

    /// Deletes every stale `*.spill` (and temp) file not in `keep`.
    /// Fresh runs call this with an empty list.
    pub(crate) fn prune_except(&self, keep: &[&str]) {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in rd.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_seg = name.ends_with(".spill") && !keep.contains(&name);
            let stale_tmp = name.starts_with('.') && name.ends_with(".tmp");
            if stale_seg || stale_tmp {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Deletes every segment this run wrote or adopted (terminal
    /// cleanup; the quarantine directory is evidence and stays).
    pub(crate) fn cleanup(&self) {
        for list in &self.segments {
            for seg in relock(list).drain(..) {
                let _ = fs::remove_file(&seg.path);
            }
        }
        self.drop_frontier();
    }

    /// Snapshot of the run's spill counters.
    pub(crate) fn counters(&self) -> SpillCounters {
        SpillCounters {
            shards: self.shards_spilled.load(Ordering::Relaxed),
            bytes: self.bytes_spilled.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            frontier_lost: self.frontier_lost.load(Ordering::Relaxed),
        }
    }

    /// Drains the buffered structured events (quarantines, failures).
    pub(crate) fn drain_events(&self) -> Vec<ExploreWarning> {
        std::mem::take(&mut *relock(&self.events))
    }
}

/// The result of reloading a spilled frontier segment.
pub(crate) enum FrontierLoad {
    /// The segment validated; these jobs re-enter the frontier.
    Jobs(Vec<SavedJob>),
    /// The segment was corrupt or unreadable: quarantined, this many
    /// jobs lost (the run is marked truncated).
    Lost(u64),
    /// No spilled frontier segments remain.
    Empty,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp_spill_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seqwm-spill-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn store(dir: &Path) -> SpillStore {
        SpillStore::open(
            &SpillSpec::new(dir),
            4,
            0xD1CE57,
            1 << 20,
            #[cfg(feature = "fault-injection")]
            None,
        )
        .unwrap()
    }

    #[cfg(feature = "fault-injection")]
    fn store_with_fault(dir: &Path, plan: crate::fault::FaultPlan) -> SpillStore {
        SpillStore::open(&SpillSpec::new(dir), 4, 0xD1CE57, 1 << 20, Some(plan)).unwrap()
    }

    fn sample_jobs() -> Vec<SavedJob> {
        vec![
            SavedJob {
                revisit: false,
                sleep: 0,
                path: vec![0, 1, 2],
            },
            SavedJob {
                revisit: true,
                sleep: 5,
                path: vec![],
            },
        ]
    }

    #[test]
    fn visited_codec_round_trips_both_levels() {
        let v64 = vec![(1u64, 0u64), (2, 3), (u64::MAX, u64::MAX)];
        let bytes = encode_visited(7, LEVEL_FP64, 42, &v64, &[]);
        let d = decode_segment(&bytes).unwrap();
        assert_eq!(
            (d.kind, d.level, d.shard, d.digest),
            (KIND_VISITED, LEVEL_FP64, 7, 42)
        );
        assert_eq!(d.v64, v64);

        let v128 = vec![((1u128 << 90) | 7, 0u64), (u128::MAX, 1)];
        let bytes = encode_visited(0, LEVEL_FP128, 42, &[], &v128);
        let d = decode_segment(&bytes).unwrap();
        assert_eq!(d.v128, v128);
    }

    #[test]
    fn frontier_codec_round_trips() {
        let jobs = sample_jobs();
        let bytes = encode_frontier(9, &jobs);
        let d = decode_segment(&bytes).unwrap();
        assert_eq!(d.kind, KIND_FRONTIER);
        assert_eq!(d.digest, 9);
        assert_eq!(d.jobs, jobs);
    }

    #[test]
    fn torn_and_flipped_segments_rejected() {
        let bytes = encode_visited(0, LEVEL_FP64, 1, &[(7, 0), (8, 1)], &[]);
        assert!(decode_segment(&[]).is_err());
        for cut in [1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_segment(&bytes[..bytes.len() - cut]).is_err(),
                "truncated by {cut}"
            );
        }
        for pos in [0, 5, 20, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode_segment(&bad).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let keys: Vec<u64> = (0..500).map(|i| mix64(i * 77 + 13)).collect();
        let mut b = Bloom::for_entries(keys.len());
        for &k in &keys {
            b.set(k);
        }
        for &k in &keys {
            assert!(b.maybe_contains(k));
        }
        // False positives exist but must be rare.
        let fp = (0..10_000)
            .map(|i| mix64(i * 31 + 1_000_000))
            .filter(|k| !keys.contains(k) && b.maybe_contains(*k))
            .count();
        assert!(fp < 800, "false-positive rate wildly off: {fp}/10000");
    }

    #[test]
    fn segment_names_are_validated() {
        assert!(valid_segment_name("seg-3-17.spill"));
        assert!(valid_segment_name("frontier-0.spill"));
        for bad in [
            "",
            ".hidden",
            "../escape.spill",
            "a/b.spill",
            "a\\b.spill",
            "name..spill",
            &"x".repeat(200),
        ] {
            assert!(!valid_segment_name(bad), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn write_probe_round_trip_with_mask_intersection() {
        let dir = temp_spill_dir("probe");
        let s = store(&dir);
        assert!(s.write_shard(1, LEVEL_FP64, &[(100, 0b1110), (200, 0b1)], &[]));
        // Same key spilled again with a tighter mask in a later
        // segment: the probe must intersect.
        assert!(s.write_shard(1, LEVEL_FP64, &[(100, 0b0111)], &[]));
        assert!(s.has_segments(1));
        assert!(!s.has_segments(0));
        assert_eq!(s.probe(1, 100, || 0), Some(0b0110));
        assert_eq!(s.probe(1, 200, || 0), Some(0b1));
        assert_eq!(s.probe(1, 999, || 0), None);
        let c = s.counters();
        assert_eq!(c.shards, 2);
        assert!(c.bytes > 0);
        assert!(c.probes >= c.hits && c.hits >= 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fp128_segments_probe_by_full_key() {
        let dir = temp_spill_dir("probe128");
        let s = store(&dir);
        let key: u128 = (5u128 << 64) | 42;
        assert!(s.write_shard(2, LEVEL_FP128, &[], &[(key, 7)]));
        assert_eq!(s.probe(2, 42, || key), Some(7));
        // Same low word, different high word: a miss.
        assert_eq!(s.probe(2, 42, || (9u128 << 64) | 42), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_quarantines_and_reads_as_unvisited() {
        let dir = temp_spill_dir("quarantine");
        let s = store(&dir);
        assert!(s.write_shard(0, LEVEL_FP64, &[(55, 3)], &[]));
        assert_eq!(s.probe(0, 55, || 0), Some(3));
        // Corrupt the segment in place.
        let seg_path = relock(&s.segments[0])[0].path.clone();
        let mut bytes = fs::read(&seg_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&seg_path, &bytes).unwrap();
        // The probe detects, quarantines, and reads as unvisited.
        assert_eq!(s.probe(0, 55, || 0), None);
        assert!(!s.has_segments(0));
        assert_eq!(s.counters().quarantined, 1);
        assert!(!seg_path.exists(), "corrupt file moved away");
        assert!(dir.join("quarantine").exists());
        let events = s.drain_events();
        assert!(events
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillQuarantined { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frontier_segments_reload_lifo() {
        let dir = temp_spill_dir("frontier");
        let s = store(&dir);
        let first = sample_jobs();
        let second = vec![SavedJob {
            revisit: false,
            sleep: 9,
            path: vec![4],
        }];
        assert!(s.write_frontier(&first));
        assert!(s.write_frontier(&second));
        match s.pop_frontier() {
            FrontierLoad::Jobs(j) => assert_eq!(j, second),
            _ => panic!("expected jobs"),
        }
        match s.pop_frontier() {
            FrontierLoad::Jobs(j) => assert_eq!(j, first),
            _ => panic!("expected jobs"),
        }
        assert!(matches!(s.pop_frontier(), FrontierLoad::Empty));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_adoption_validates_end_to_end() {
        let dir = temp_spill_dir("adopt");
        let s = store(&dir);
        assert!(s.write_shard(3, LEVEL_FP64, &[(70, 1), (71, 2)], &[]));
        assert!(s.write_shard(0, LEVEL_FP64, &[(80, 4)], &[]));
        let (nshards, manifest) = s.manifest();
        assert_eq!(manifest.len(), 2);

        // A second store (a resumed run) adopts the manifest.
        let s2 = store(&dir);
        let mut warnings = Vec::new();
        s2.adopt(nshards, &manifest, &mut warnings);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(s2.probe(3, 70, || 0), Some(1));
        assert_eq!(s2.probe(0, 80, || 0), Some(4));

        // A third store with a *tampered* manifest checksum rejects.
        let s3 = store(&dir);
        let mut bad = manifest.clone();
        bad[0].checksum ^= 1;
        let mut warnings = Vec::new();
        s3.adopt(nshards, &bad, &mut warnings);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillQuarantined { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adoption_prunes_unlisted_segments_and_fresh_runs_clear_all() {
        let dir = temp_spill_dir("prune");
        let s = store(&dir);
        assert!(s.write_shard(0, LEVEL_FP64, &[(1, 0)], &[]));
        let (nshards, manifest) = s.manifest();
        // A segment written after the checkpoint (not in the manifest)
        // and a frontier segment must both be pruned on adoption.
        assert!(s.write_shard(1, LEVEL_FP64, &[(2, 0)], &[]));
        assert!(s.write_frontier(&sample_jobs()));

        let s2 = store(&dir);
        let mut warnings = Vec::new();
        s2.adopt(nshards, &manifest, &mut warnings);
        assert!(warnings.is_empty(), "{warnings:?}");
        let remaining: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .filter(|n| n.ends_with(".spill"))
            .collect();
        assert_eq!(remaining.len(), 1, "{remaining:?}");
        assert_eq!(remaining[0], manifest[0].name);

        // A fresh (non-resumed) run clears everything.
        let s3 = store(&dir);
        s3.prune_except(&[]);
        let leftover = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".spill"))
            })
            .count();
        assert_eq!(leftover, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_shard_count_ignores_manifest() {
        let dir = temp_spill_dir("shardcount");
        let s = store(&dir);
        assert!(s.write_shard(0, LEVEL_FP64, &[(1, 0)], &[]));
        let (_, manifest) = s.manifest();
        let s2 = store(&dir);
        let mut warnings = Vec::new();
        s2.adopt(99, &manifest, &mut warnings);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillIgnored { .. })));
        assert!(!s2.has_segments(0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cleanup_removes_segments_but_keeps_quarantine() {
        let dir = temp_spill_dir("cleanup");
        let s = store(&dir);
        assert!(s.write_shard(0, LEVEL_FP64, &[(1, 0)], &[]));
        assert!(s.write_frontier(&sample_jobs()));
        // Corrupt a second segment so something lands in quarantine.
        assert!(s.write_shard(1, LEVEL_FP64, &[(2, 0)], &[]));
        let victim = relock(&s.segments[1])[0].path.clone();
        fs::write(&victim, b"garbage").unwrap();
        assert_eq!(s.probe(1, 2, || 0), None);
        s.cleanup();
        let spills = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .count();
        assert_eq!(spills, 0, "all live segments deleted");
        assert!(dir.join("quarantine").exists(), "evidence kept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_torn_write_is_lossless() {
        use crate::fault::FaultPlan;
        let dir = temp_spill_dir("torn");
        let plan = FaultPlan {
            seed: 3,
            disk_torn_write_per_mille: 1000,
            ..FaultPlan::default()
        };
        let s = store_with_fault(&dir, plan);
        // Every write tears: the read-back catches each one, the store
        // stays enabled, and no segment is ever trusted.
        assert!(!s.write_shard(0, LEVEL_FP64, &[(5, 0)], &[]));
        assert!(s.enabled());
        assert!(!s.has_segments(0));
        assert!(s.counters().quarantined >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_disk_full_disables_gracefully() {
        use crate::fault::FaultPlan;
        let dir = temp_spill_dir("enospc");
        let plan = FaultPlan {
            seed: 3,
            disk_full_after_writes: Some(1),
            ..FaultPlan::default()
        };
        let s = store_with_fault(&dir, plan);
        assert!(s.write_shard(0, LEVEL_FP64, &[(5, 6)], &[]));
        // Second write hits the injected ENOSPC and disables writes...
        assert!(!s.write_shard(1, LEVEL_FP64, &[(7, 0)], &[]));
        assert!(!s.enabled());
        // ...but the existing segment still probes.
        assert_eq!(s.probe(0, 5, || 0), Some(6));
        let events = s.drain_events();
        assert!(events
            .iter()
            .any(|w| matches!(w, ExploreWarning::SpillFailed { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_read_error_quarantines_and_stays_sound() {
        use crate::fault::FaultPlan;
        let dir = temp_spill_dir("readerr");
        let plan = FaultPlan {
            seed: 3,
            disk_read_error_per_mille: 1000,
            ..FaultPlan::default()
        };
        let s = store_with_fault(&dir, plan);
        assert!(s.write_shard(0, LEVEL_FP64, &[(5, 6)], &[]));
        // The probe's read faults: quarantined, reads as unvisited.
        assert_eq!(s.probe(0, 5, || 0), None);
        assert!(!s.has_segments(0));
        assert_eq!(s.counters().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
