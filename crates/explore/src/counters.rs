//! Always-compiled global performance counters.
//!
//! A handful of process-wide atomic counters that the hot paths bump
//! unconditionally (relaxed ordering, one `fetch_add` per *run*, not
//! per state, wherever possible) so an external observer — the
//! `seqwm-bench` harness in particular — can attribute work to a
//! region of code without threading a stats struct through every
//! caller. The counters are cumulative for the process lifetime;
//! observers take a [`CounterSnapshot`] before and after the region
//! of interest and subtract.
//!
//! These deliberately overlap with [`crate::ExploreStats`]: the stats
//! struct is the *per-exploration* structured result, while the
//! globals aggregate across explorations (including ones whose stats
//! the caller discards, e.g. inside refinement checks or fuzz
//! campaigns) and across crates (`seqwm-seq` bumps the refinement-fuel
//! counters here so the bench harness has a single place to sample).

use std::sync::atomic::{AtomicU64, Ordering};

/// Distinct states expanded (post-dedup), summed over all explorations.
pub static STATES: AtomicU64 = AtomicU64::new(0);
/// Transitions enumerated, summed over all explorations.
pub static TRANSITIONS: AtomicU64 = AtomicU64::new(0);
/// Frontier entries answered by the visited set.
pub static DEDUP_HITS: AtomicU64 = AtomicU64::new(0);
/// Agent groups skipped by sleep-set reduction.
pub static SLEEP_SKIPS: AtomicU64 = AtomicU64::new(0);
/// States expanded through a single local group (ample-set reduction).
pub static AMPLE_COMMITS: AtomicU64 = AtomicU64::new(0);
/// Sleep bits granted by the non-atomic-write commutation rule.
pub static NA_COMMUTES: AtomicU64 = AtomicU64::new(0);
/// Sleep bits granted by the read/read (and read vs distinct-location
/// write) commutation rule.
pub static READ_COMMUTES: AtomicU64 = AtomicU64::new(0);
/// Sleep bits granted by the atomic-write commutation rule (distinct
/// locations, canonical state quotient).
pub static ATOMIC_COMMUTES: AtomicU64 = AtomicU64::new(0);
/// Bytes of checkpoint data encoded and written to disk.
pub static CHECKPOINT_BYTES: AtomicU64 = AtomicU64::new(0);
/// SEQ refinement fuel spent (states visited by behavior enumeration
/// and by the advanced checker's game search). Bumped by `seqwm-seq`.
pub static REFINE_FUEL_SPENT: AtomicU64 = AtomicU64::new(0);
/// Completed behavior-set enumerations in `seqwm-seq`.
pub static REFINE_ENUMERATIONS: AtomicU64 = AtomicU64::new(0);
/// Serve-daemon result-cache hits (verdict answered without running a
/// job). Bumped by `seqwm-serve`.
pub static SERVE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Serve-daemon result-cache misses (job actually executed).
pub static SERVE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
/// Serve-daemon result-cache evictions (LRU capacity pressure).
pub static SERVE_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
/// Visited-set shards spilled to disk under memory pressure.
pub static SPILL_SHARDS: AtomicU64 = AtomicU64::new(0);
/// Bytes of spill-segment data written to disk.
pub static SPILL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Membership probes that touched a spilled segment on disk (Bloom
/// summary hits; summary misses cost no I/O and are not counted).
pub static SPILL_PROBES: AtomicU64 = AtomicU64::new(0);
/// Disk probes that found the fingerprint in a spilled segment.
pub static SPILL_HITS: AtomicU64 = AtomicU64::new(0);

/// Optimizer validation obligations answered from the memo cache.
pub static OPT_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Optimizer validation obligations that had to be discharged fresh.
pub static OPT_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
/// Programs pushed through the validated optimizer pipeline.
pub static OPT_PROGRAMS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` to a counter (relaxed; counters are monotone and only
/// read via before/after snapshots).
pub fn add(counter: &AtomicU64, n: u64) {
    if n != 0 {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Folds a finished exploration's stats into the global counters.
/// Called once per engine run — cheap enough to be always on.
pub fn record_explore(stats: &crate::ExploreStats) {
    add(&STATES, stats.states as u64);
    add(&TRANSITIONS, stats.transitions as u64);
    add(&DEDUP_HITS, stats.dedup_hits as u64);
    add(&SLEEP_SKIPS, stats.sleep_skips as u64);
    add(&AMPLE_COMMITS, stats.ample_commits as u64);
    add(&NA_COMMUTES, stats.na_commutes as u64);
    add(&READ_COMMUTES, stats.read_commutes as u64);
    add(&ATOMIC_COMMUTES, stats.atomic_commutes as u64);
}

/// A point-in-time copy of every global counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// [`STATES`] at capture time.
    pub states: u64,
    /// [`TRANSITIONS`] at capture time.
    pub transitions: u64,
    /// [`DEDUP_HITS`] at capture time.
    pub dedup_hits: u64,
    /// [`SLEEP_SKIPS`] at capture time.
    pub sleep_skips: u64,
    /// [`AMPLE_COMMITS`] at capture time.
    pub ample_commits: u64,
    /// [`NA_COMMUTES`] at capture time.
    pub na_commutes: u64,
    /// [`READ_COMMUTES`] at capture time.
    pub read_commutes: u64,
    /// [`ATOMIC_COMMUTES`] at capture time.
    pub atomic_commutes: u64,
    /// [`CHECKPOINT_BYTES`] at capture time.
    pub checkpoint_bytes: u64,
    /// [`REFINE_FUEL_SPENT`] at capture time.
    pub refine_fuel_spent: u64,
    /// [`REFINE_ENUMERATIONS`] at capture time.
    pub refine_enumerations: u64,
    /// [`SERVE_CACHE_HITS`] at capture time.
    pub serve_cache_hits: u64,
    /// [`SERVE_CACHE_MISSES`] at capture time.
    pub serve_cache_misses: u64,
    /// [`SERVE_CACHE_EVICTIONS`] at capture time.
    pub serve_cache_evictions: u64,
    /// [`SPILL_SHARDS`] at capture time.
    pub spill_shards: u64,
    /// [`SPILL_BYTES`] at capture time.
    pub spill_bytes: u64,
    /// [`SPILL_PROBES`] at capture time.
    pub spill_probes: u64,
    /// [`SPILL_HITS`] at capture time.
    pub spill_hits: u64,
    /// [`OPT_CACHE_HITS`] at capture time.
    pub opt_cache_hits: u64,
    /// [`OPT_CACHE_MISSES`] at capture time.
    pub opt_cache_misses: u64,
    /// [`OPT_PROGRAMS`] at capture time.
    pub opt_programs: u64,
}

impl CounterSnapshot {
    /// Reads every counter.
    pub fn capture() -> Self {
        CounterSnapshot {
            states: STATES.load(Ordering::Relaxed),
            transitions: TRANSITIONS.load(Ordering::Relaxed),
            dedup_hits: DEDUP_HITS.load(Ordering::Relaxed),
            sleep_skips: SLEEP_SKIPS.load(Ordering::Relaxed),
            ample_commits: AMPLE_COMMITS.load(Ordering::Relaxed),
            na_commutes: NA_COMMUTES.load(Ordering::Relaxed),
            read_commutes: READ_COMMUTES.load(Ordering::Relaxed),
            atomic_commutes: ATOMIC_COMMUTES.load(Ordering::Relaxed),
            checkpoint_bytes: CHECKPOINT_BYTES.load(Ordering::Relaxed),
            refine_fuel_spent: REFINE_FUEL_SPENT.load(Ordering::Relaxed),
            refine_enumerations: REFINE_ENUMERATIONS.load(Ordering::Relaxed),
            serve_cache_hits: SERVE_CACHE_HITS.load(Ordering::Relaxed),
            serve_cache_misses: SERVE_CACHE_MISSES.load(Ordering::Relaxed),
            serve_cache_evictions: SERVE_CACHE_EVICTIONS.load(Ordering::Relaxed),
            spill_shards: SPILL_SHARDS.load(Ordering::Relaxed),
            spill_bytes: SPILL_BYTES.load(Ordering::Relaxed),
            spill_probes: SPILL_PROBES.load(Ordering::Relaxed),
            spill_hits: SPILL_HITS.load(Ordering::Relaxed),
            opt_cache_hits: OPT_CACHE_HITS.load(Ordering::Relaxed),
            opt_cache_misses: OPT_CACHE_MISSES.load(Ordering::Relaxed),
            opt_programs: OPT_PROGRAMS.load(Ordering::Relaxed),
        }
    }

    /// Counter growth since `earlier` (saturating: counters are
    /// monotone, so a negative delta only arises from snapshot misuse).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            states: self.states.saturating_sub(earlier.states),
            transitions: self.transitions.saturating_sub(earlier.transitions),
            dedup_hits: self.dedup_hits.saturating_sub(earlier.dedup_hits),
            sleep_skips: self.sleep_skips.saturating_sub(earlier.sleep_skips),
            ample_commits: self.ample_commits.saturating_sub(earlier.ample_commits),
            na_commutes: self.na_commutes.saturating_sub(earlier.na_commutes),
            read_commutes: self.read_commutes.saturating_sub(earlier.read_commutes),
            atomic_commutes: self.atomic_commutes.saturating_sub(earlier.atomic_commutes),
            checkpoint_bytes: self
                .checkpoint_bytes
                .saturating_sub(earlier.checkpoint_bytes),
            refine_fuel_spent: self
                .refine_fuel_spent
                .saturating_sub(earlier.refine_fuel_spent),
            refine_enumerations: self
                .refine_enumerations
                .saturating_sub(earlier.refine_enumerations),
            serve_cache_hits: self
                .serve_cache_hits
                .saturating_sub(earlier.serve_cache_hits),
            serve_cache_misses: self
                .serve_cache_misses
                .saturating_sub(earlier.serve_cache_misses),
            serve_cache_evictions: self
                .serve_cache_evictions
                .saturating_sub(earlier.serve_cache_evictions),
            spill_shards: self.spill_shards.saturating_sub(earlier.spill_shards),
            spill_bytes: self.spill_bytes.saturating_sub(earlier.spill_bytes),
            spill_probes: self.spill_probes.saturating_sub(earlier.spill_probes),
            spill_hits: self.spill_hits.saturating_sub(earlier.spill_hits),
            opt_cache_hits: self.opt_cache_hits.saturating_sub(earlier.opt_cache_hits),
            opt_cache_misses: self
                .opt_cache_misses
                .saturating_sub(earlier.opt_cache_misses),
            opt_programs: self.opt_programs.saturating_sub(earlier.opt_programs),
        }
    }

    /// `(name, value)` pairs in a fixed order, for serialization. New
    /// counters are appended, never inserted, so indices are stable.
    pub fn entries(&self) -> [(&'static str, u64); 21] {
        [
            ("states", self.states),
            ("transitions", self.transitions),
            ("dedup_hits", self.dedup_hits),
            ("sleep_skips", self.sleep_skips),
            ("ample_commits", self.ample_commits),
            ("na_commutes", self.na_commutes),
            ("read_commutes", self.read_commutes),
            ("atomic_commutes", self.atomic_commutes),
            ("checkpoint_bytes", self.checkpoint_bytes),
            ("refine_fuel_spent", self.refine_fuel_spent),
            ("refine_enumerations", self.refine_enumerations),
            ("serve_cache_hits", self.serve_cache_hits),
            ("serve_cache_misses", self.serve_cache_misses),
            ("serve_cache_evictions", self.serve_cache_evictions),
            ("spill_shards", self.spill_shards),
            ("spill_bytes", self.spill_bytes),
            ("spill_probes", self.spill_probes),
            ("spill_hits", self.spill_hits),
            ("opt_cache_hits", self.opt_cache_hits),
            ("opt_cache_misses", self.opt_cache_misses),
            ("opt_programs", self.opt_programs),
        ]
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let before = CounterSnapshot::capture();
        let stats = crate::ExploreStats {
            states: 7,
            transitions: 11,
            dedup_hits: 3,
            sleep_skips: 2,
            ample_commits: 1,
            na_commutes: 5,
            ..crate::ExploreStats::default()
        };
        record_explore(&stats);
        add(&CHECKPOINT_BYTES, 100);
        add(&REFINE_FUEL_SPENT, 40);
        add(&REFINE_ENUMERATIONS, 1);
        let delta = CounterSnapshot::capture().since(&before);
        // Other tests may run concurrently and also bump the globals,
        // so assert lower bounds only.
        assert!(delta.states >= 7);
        assert!(delta.transitions >= 11);
        assert!(delta.dedup_hits >= 3);
        assert!(delta.na_commutes >= 5);
        assert!(delta.checkpoint_bytes >= 100);
        assert!(delta.refine_fuel_spent >= 40);
        assert!(delta.refine_enumerations >= 1);
    }

    #[test]
    fn entries_order_is_stable() {
        let names: Vec<_> = CounterSnapshot::default()
            .entries()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names[0], "states");
        assert_eq!(names[6], "read_commutes");
        assert_eq!(names[7], "atomic_commutes");
        assert_eq!(names[10], "refine_enumerations");
        assert_eq!(names[11], "serve_cache_hits");
        assert_eq!(names[13], "serve_cache_evictions");
        assert_eq!(names[14], "spill_shards");
        assert_eq!(names[17], "spill_hits");
        assert_eq!(names.len(), 18);
    }
}
