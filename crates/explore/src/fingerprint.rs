//! State fingerprinting for the visited set.
//!
//! Instead of storing a full clone of every visited state (the seed
//! explorer's `HashSet<MachineState>`), the engine stores a 64- or
//! 128-bit fingerprint. The hash is an internal FxHash (the rustc
//! compiler's multiplicative hash) finalized with the SplitMix64 mixer
//! for avalanche; 128-bit mode runs two independently-seeded passes.
//! Collision probability for a 64-bit fingerprint over `n` states is
//! about `n²/2⁶⁵` — around 10⁻⁹ for the 200k-state default budget —
//! and the exact mode ([`crate::VisitedMode::Exact`]) remains available
//! when a proof-grade visited set is required.

use std::hash::{Hash, Hasher};

use crate::rng::mix64;

const FX_K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash function: fast, deterministic, seedable.
#[derive(Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A hasher with the given seed (different seeds give independent
    /// fingerprint families).
    pub fn with_seed(seed: u64) -> Self {
        FxHasher { hash: seed }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher::with_seed(0)
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Finalize with an avalanche mixer: raw FxHash output has weak
        // low bits, which matters for shard selection.
        mix64(self.hash)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(w) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

const SEED_A: u64 = 0xA076_1D64_78BD_642F;
const SEED_B: u64 = 0xE703_7ED1_A0B4_28DB;

/// A 64-bit fingerprint of any hashable state.
#[inline]
pub fn fp64<T: Hash + ?Sized>(x: &T) -> u64 {
    let mut h = FxHasher::with_seed(SEED_A);
    x.hash(&mut h);
    h.finish()
}

/// A 128-bit fingerprint: two independently-seeded 64-bit passes.
#[inline]
pub fn fp128<T: Hash + ?Sized>(x: &T) -> u128 {
    let mut h = FxHasher::with_seed(SEED_B);
    x.hash(&mut h);
    ((h.finish() as u128) << 64) | fp64(x) as u128
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn equal_states_equal_fingerprints() {
        let a = (vec![1u32, 2, 3], "memory");
        let b = (vec![1u32, 2, 3], "memory");
        assert_eq!(fp64(&a), fp64(&b));
        assert_eq!(fp128(&a), fp128(&b));
    }

    #[test]
    fn distinct_states_distinct_fingerprints() {
        // Not guaranteed in general, but must hold on tiny inputs.
        let fps: Vec<u64> = (0u64..1000).map(|i| fp64(&(i, i * 3))).collect();
        let uniq: std::collections::HashSet<u64> = fps.iter().copied().collect();
        assert_eq!(uniq.len(), fps.len());
    }

    #[test]
    fn fp128_halves_are_independent() {
        let x = fp128(&(1u8, 2u8));
        assert_ne!((x >> 64) as u64, x as u64);
    }

    #[test]
    fn write_tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
