//! The [`TransitionSystem`] abstraction the engine explores.
//!
//! A system presents its state space as: an initial state, a
//! terminal-behavior extractor, and — per state — a list of *agent
//! groups*, one per concurrently-enabled agent (a PS^na thread, an SC
//! thread, or the single agent of the sequential SEQ machine). Each
//! group carries soundness flags ([`AgentGroup::shared_pure`],
//! [`AgentGroup::local`]) that license the engine's interleaving
//! reduction; an adapter that cannot prove a flag must leave it
//! `false`, which only costs exploration work, never behaviors.

/// Where a transition leads.
#[derive(Clone, Debug)]
pub enum Target<St, B> {
    /// An ordinary successor state.
    State(St),
    /// Immediate emission of a behavior (e.g. undefined behavior /
    /// machine failure) without a successor state.
    Behavior(B),
    /// A transition that was enumerated but filtered out by the system
    /// (e.g. a step whose certification failed). Recorded in the stats
    /// (and its tags still count) but not explored.
    Pruned,
}

/// Statistics tags attached to a transition by the system.
#[derive(Clone, Copy, Default, Debug)]
pub struct StepTags {
    /// The step is a racy access (read or write).
    pub racy: bool,
    /// The step is a promise step.
    pub promise: bool,
}

/// One enumerated transition.
#[derive(Clone, Debug)]
pub struct Transition<St, B> {
    /// Where it leads.
    pub target: Target<St, B>,
    /// Statistics tags.
    pub tags: StepTags,
}

impl<St, B> Transition<St, B> {
    /// An ordinary untagged successor.
    pub fn state(st: St) -> Self {
        Transition {
            target: Target::State(st),
            tags: StepTags::default(),
        }
    }

    /// An untagged behavior emission.
    pub fn behavior(b: B) -> Self {
        Transition {
            target: Target::Behavior(b),
            tags: StepTags::default(),
        }
    }
}

/// All transitions of one agent at one state, plus the commutation
/// facts the reduction relies on.
#[derive(Clone, Debug)]
pub struct AgentGroup<St, B> {
    /// The agent's index (thread id). Must be stable across states:
    /// the engine tracks sleep sets as per-agent bitmasks.
    pub agent: usize,
    /// The agent's transitions.
    pub transitions: Vec<Transition<St, B>>,
    /// Every transition in this group leaves the *shared* state
    /// (memory, SC view, …) unchanged and its enabledness/effect does
    /// not depend on any other agent's private state. Two
    /// `shared_pure` groups of different agents therefore commute:
    /// executing one cannot change the other. Licenses sleep-set
    /// reduction.
    pub shared_pure: bool,
    /// Strictly stronger than `shared_pure`: the agent's next step
    /// neither reads nor writes shared state (a thread-local compute /
    /// choice / output step), every transition is a
    /// [`Target::State`], and no other kind of step (promise, …) is
    /// enabled for this agent. Such a step is independent of *every*
    /// transition of every other agent, licensing ample-set reduction
    /// (exploring only this agent at this state).
    ///
    /// Note purity alone is NOT enough here: a `shared_pure` *read*
    /// does not commute with another thread's write (the write enables
    /// new read values), so `local` must exclude reads.
    pub local: bool,
    /// `Some(fp)` iff *every* transition in this group is an ordinary
    /// [`Target::State`] step whose only shared-state effect is a
    /// write to the single **non-atomic** location fingerprinted by
    /// `fp` (use [`crate::fp64`] on the location so fingerprints are
    /// comparable across agents), with no promise outstanding or
    /// emitted by the step and the global SC view unchanged.
    ///
    /// Two such groups of different agents with *distinct*
    /// fingerprints commute: non-atomic writes to distinct locations
    /// touch disjoint per-location timelines and only the writer's own
    /// view of its own location, so executing either cannot enable,
    /// disable, or change the effect of the other, and both execution
    /// orders reach the same state. (Same-location pairs race and must
    /// NOT claim independence; a `shared_pure` read is *not*
    /// independent of a write either — leave reads at `None`.)
    /// Licenses sleep-set reduction pairwise against other `na_write`
    /// groups, in addition to the `shared_pure`-vs-`shared_pure` rule.
    pub na_write: Option<u64>,
    /// `Some(fp)` iff *every* transition in this group is an ordinary
    /// [`Target::State`] step that only *reads* shared state, and the
    /// single shared location it reads is fingerprinted by `fp` (via
    /// [`crate::fp64`] on the location). The group must additionally
    /// be [`shared_pure`](Self::shared_pure)-grade: no shared-state
    /// mutation, no SC-view change, no promise enabled or emitted.
    ///
    /// Two read-only groups commute regardless of location: neither
    /// changes anything the other can observe. A read group also
    /// commutes with a *write* group ([`na_write`](Self::na_write) or
    /// [`atomic_write`](Self::atomic_write)) to a **distinct**
    /// location — but never with a write to the *same* location (the
    /// write enables new read values), so the relation compares
    /// fingerprints. A read group whose location cannot be pinned to
    /// one fingerprint must stay `None` (it still benefits from the
    /// pure/pure rule).
    pub shared_read: Option<u64>,
    /// `Some(fp)` iff *every* transition in this group is an ordinary
    /// [`Target::State`] step whose only shared-state effect is an
    /// **atomic** write to the single location fingerprinted by `fp`
    /// ([`crate::fp64`]), with no promise outstanding or emitted and
    /// the global SC view unchanged.
    ///
    /// Unlike [`na_write`](Self::na_write), atomic writes to distinct
    /// locations do *not* commute state-on-the-nose under PS^na: the
    /// dense timestamps each write picks depend on the interleaving,
    /// so the two execution orders reach states that differ in
    /// timestamp *values* while agreeing on everything observable
    /// (order type, adjacency, views up to the same quotient). A
    /// system may therefore only claim this flag when its `State`
    /// equality (`Eq`/`Hash`) is invariant under that quotient — i.e.
    /// states reached by reordering two distinct-location atomic
    /// writes compare equal. The canonicalizing PS^na adapter
    /// (`seqwm-promising`'s canonical mode, which ranks timestamps per
    /// location and joins views before hashing) and the SC adapter
    /// (flat memory, writes to distinct keys commute structurally)
    /// satisfy this; the raw PS^na adapter does not and must leave the
    /// flag `None`. Same-location pairs never commute (coherence
    /// orders them observably).
    pub atomic_write: Option<u64>,
}

/// Which rule (if any) grants independence of a pair of agent groups.
/// Ordered from the strongest commutation guarantee to the weakest:
/// later rules subsume earlier ones' preconditions but rely on
/// progressively more system-side reasoning (see DESIGN.md §3.11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndependenceRule {
    /// The pair does not commute (or cannot be proven to).
    Dependent,
    /// Both groups are [`AgentGroup::shared_pure`]: neither touches
    /// shared state, so they commute trivially.
    Pure,
    /// Granted by the read/read (or read vs distinct-location write)
    /// rule via [`AgentGroup::shared_read`].
    Read,
    /// Granted by the non-atomic-write rule via
    /// [`AgentGroup::na_write`]: distinct-location NA writes commute
    /// state-on-the-nose.
    NaWrite,
    /// Granted by the atomic-write rule via
    /// [`AgentGroup::atomic_write`]: distinct-location atomic writes
    /// commute up to the canonical state quotient.
    AtomicWrite,
}

impl IndependenceRule {
    /// Whether the pair commutes at all.
    pub fn independent(self) -> bool {
        self != IndependenceRule::Dependent
    }
}

/// The location-fingerprint a group *writes*, if it claims a
/// single-location write rule (NA or atomic).
fn write_fp<St, B>(g: &AgentGroup<St, B>) -> Option<u64> {
    g.na_write.or(g.atomic_write)
}

/// Whether two agent groups' steps commute (order-irrelevant), i.e.
/// from any state where both are enabled, executing them in either
/// order reaches the same state (up to the system's state equality —
/// see [`AgentGroup::atomic_write`]) and neither enables/disables the
/// other. Returns the granting [`IndependenceRule`], or
/// [`IndependenceRule::Dependent`] when none applies; the engine maps
/// the rule to its per-rule counter and to the corresponding
/// [`crate::ReductionRules`] toggle.
///
/// The relation is symmetric by construction: every clause treats `a`
/// and `b` the same way (exercised by the property tests in
/// `independence_props.rs`).
pub fn groups_independent<St, B>(a: &AgentGroup<St, B>, b: &AgentGroup<St, B>) -> IndependenceRule {
    if a.shared_pure && b.shared_pure {
        return IndependenceRule::Pure;
    }
    // Local vs write: a `local` step neither reads nor writes shared
    // state and its enabledness/effect cannot depend on any other
    // agent, so it commutes state-on-the-nose with a write to ANY
    // location — the write observes nothing the local step changes and
    // vice versa. (Local vs *read* needs no clause: read groups are
    // `shared_pure`-grade and `local` implies `shared_pure`, so the
    // pure/pure rule already covers that pair.) The grant is
    // attributed to the write side's rule, keeping it behind the
    // existing `ReductionRules` toggles: disabling `na_write` or
    // `atomic_write` also silences the corresponding local-vs-write
    // grants.
    if a.local || b.local {
        let w = if a.local { b } else { a };
        if w.na_write.is_some() {
            return IndependenceRule::NaWrite;
        }
        if w.atomic_write.is_some() {
            return IndependenceRule::AtomicWrite;
        }
    }
    // Read/read: two read-only groups commute regardless of location.
    if a.shared_read.is_some() && b.shared_read.is_some() {
        return IndependenceRule::Read;
    }
    // Read vs write: commute iff the locations are distinct. The
    // same-location case is the reads-don't-sleep-writers guard — a
    // write enables new values for the read, so the pair is dependent
    // in BOTH directions (writer must not sleep the reader and vice
    // versa).
    match (a.shared_read, write_fp(b)) {
        (Some(x), Some(y)) if x != y => return IndependenceRule::Read,
        (Some(_), Some(_)) => return IndependenceRule::Dependent,
        _ => {}
    }
    match (write_fp(a), b.shared_read) {
        (Some(x), Some(y)) if x != y => return IndependenceRule::Read,
        (Some(_), Some(_)) => return IndependenceRule::Dependent,
        _ => {}
    }
    // NA/NA writes to distinct locations commute state-on-the-nose.
    match (a.na_write, b.na_write) {
        (Some(x), Some(y)) if x != y => return IndependenceRule::NaWrite,
        _ => {}
    }
    // Any remaining distinct-location write pair with at least one
    // atomic side commutes only up to the canonical quotient, so it is
    // attributed to (and gated by) the atomic-write rule.
    match (write_fp(a), write_fp(b)) {
        (Some(x), Some(y)) if x != y && (a.atomic_write.is_some() || b.atomic_write.is_some()) => {
            IndependenceRule::AtomicWrite
        }
        _ => IndependenceRule::Dependent,
    }
}

/// A transition system the engine can explore.
pub trait TransitionSystem: Sync {
    /// A machine state. `Hash` must be deterministic across threads
    /// (derive it from ordered containers only).
    type State: Clone + Eq + std::hash::Hash + Send;
    /// An observable behavior.
    type Behavior: Clone + Ord + Send;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// All agents' transitions at `st`, grouped per agent. Agents with
    /// no transitions may be omitted.
    fn agent_groups(&self, st: &Self::State) -> Vec<AgentGroup<Self::State, Self::Behavior>>;

    /// If `st` is terminal, its behavior.
    fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior>;
}
