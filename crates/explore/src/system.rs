//! The [`TransitionSystem`] abstraction the engine explores.
//!
//! A system presents its state space as: an initial state, a
//! terminal-behavior extractor, and — per state — a list of *agent
//! groups*, one per concurrently-enabled agent (a PS^na thread, an SC
//! thread, or the single agent of the sequential SEQ machine). Each
//! group carries soundness flags ([`AgentGroup::shared_pure`],
//! [`AgentGroup::local`]) that license the engine's interleaving
//! reduction; an adapter that cannot prove a flag must leave it
//! `false`, which only costs exploration work, never behaviors.

/// Where a transition leads.
#[derive(Clone, Debug)]
pub enum Target<St, B> {
    /// An ordinary successor state.
    State(St),
    /// Immediate emission of a behavior (e.g. undefined behavior /
    /// machine failure) without a successor state.
    Behavior(B),
    /// A transition that was enumerated but filtered out by the system
    /// (e.g. a step whose certification failed). Recorded in the stats
    /// (and its tags still count) but not explored.
    Pruned,
}

/// Statistics tags attached to a transition by the system.
#[derive(Clone, Copy, Default, Debug)]
pub struct StepTags {
    /// The step is a racy access (read or write).
    pub racy: bool,
    /// The step is a promise step.
    pub promise: bool,
}

/// One enumerated transition.
#[derive(Clone, Debug)]
pub struct Transition<St, B> {
    /// Where it leads.
    pub target: Target<St, B>,
    /// Statistics tags.
    pub tags: StepTags,
}

impl<St, B> Transition<St, B> {
    /// An ordinary untagged successor.
    pub fn state(st: St) -> Self {
        Transition {
            target: Target::State(st),
            tags: StepTags::default(),
        }
    }

    /// An untagged behavior emission.
    pub fn behavior(b: B) -> Self {
        Transition {
            target: Target::Behavior(b),
            tags: StepTags::default(),
        }
    }
}

/// All transitions of one agent at one state, plus the commutation
/// facts the reduction relies on.
#[derive(Clone, Debug)]
pub struct AgentGroup<St, B> {
    /// The agent's index (thread id). Must be stable across states:
    /// the engine tracks sleep sets as per-agent bitmasks.
    pub agent: usize,
    /// The agent's transitions.
    pub transitions: Vec<Transition<St, B>>,
    /// Every transition in this group leaves the *shared* state
    /// (memory, SC view, …) unchanged and its enabledness/effect does
    /// not depend on any other agent's private state. Two
    /// `shared_pure` groups of different agents therefore commute:
    /// executing one cannot change the other. Licenses sleep-set
    /// reduction.
    pub shared_pure: bool,
    /// Strictly stronger than `shared_pure`: the agent's next step
    /// neither reads nor writes shared state (a thread-local compute /
    /// choice / output step), every transition is a
    /// [`Target::State`], and no other kind of step (promise, …) is
    /// enabled for this agent. Such a step is independent of *every*
    /// transition of every other agent, licensing ample-set reduction
    /// (exploring only this agent at this state).
    ///
    /// Note purity alone is NOT enough here: a `shared_pure` *read*
    /// does not commute with another thread's write (the write enables
    /// new read values), so `local` must exclude reads.
    pub local: bool,
    /// `Some(fp)` iff *every* transition in this group is an ordinary
    /// [`Target::State`] step whose only shared-state effect is a
    /// write to the single **non-atomic** location fingerprinted by
    /// `fp` (use [`crate::fp64`] on the location so fingerprints are
    /// comparable across agents), with no promise outstanding or
    /// emitted by the step and the global SC view unchanged.
    ///
    /// Two such groups of different agents with *distinct*
    /// fingerprints commute: non-atomic writes to distinct locations
    /// touch disjoint per-location timelines and only the writer's own
    /// view of its own location, so executing either cannot enable,
    /// disable, or change the effect of the other, and both execution
    /// orders reach the same state. (Same-location pairs race and must
    /// NOT claim independence; a `shared_pure` read is *not*
    /// independent of a write either — leave reads at `None`.)
    /// Licenses sleep-set reduction pairwise against other `na_write`
    /// groups, in addition to the `shared_pure`-vs-`shared_pure` rule.
    pub na_write: Option<u64>,
}

/// Whether two agent groups' steps commute (order-irrelevant), i.e.
/// from any state where both are enabled, executing them in either
/// order reaches the same state and neither enables/disables the
/// other. Returns `(independent, via_na)` where `via_na` marks pairs
/// granted only by the non-atomic-write rule (for the
/// [`na_commutes`](crate::ExploreStats::na_commutes) counter).
pub fn groups_independent<St, B>(a: &AgentGroup<St, B>, b: &AgentGroup<St, B>) -> (bool, bool) {
    if a.shared_pure && b.shared_pure {
        return (true, false);
    }
    match (a.na_write, b.na_write) {
        (Some(x), Some(y)) if x != y => (true, true),
        _ => (false, false),
    }
}

/// A transition system the engine can explore.
pub trait TransitionSystem: Sync {
    /// A machine state. `Hash` must be deterministic across threads
    /// (derive it from ordered containers only).
    type State: Clone + Eq + std::hash::Hash + Send;
    /// An observable behavior.
    type Behavior: Clone + Ord + Send;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// All agents' transitions at `st`, grouped per agent. Agents with
    /// no transitions may be omitted.
    fn agent_groups(&self, st: &Self::State) -> Vec<AgentGroup<Self::State, Self::Behavior>>;

    /// If `st` is terminal, its behavior.
    fn terminal_behavior(&self, st: &Self::State) -> Option<Self::Behavior>;
}
