//! The engine's failure model: typed errors, non-fatal warnings,
//! worker incidents, and the structured stop reason.
//!
//! The engine distinguishes three severities:
//!
//! * **Errors** ([`ExploreError`]) abort a run before it starts
//!   (caller misconfiguration, e.g. checkpointing a random walk).
//!   They are the only way [`crate::try_explore`] fails.
//! * **Warnings** ([`ExploreWarning`]) degrade a run without stopping
//!   it: a corrupt checkpoint falls back to a fresh search, a failed
//!   periodic save is retried later, a memory-budget breach downgrades
//!   the visited set. They are collected in
//!   [`ExploreStats::warnings`](crate::ExploreStats::warnings).
//! * **Incidents** ([`ExploreIncident`]) are recovered worker faults:
//!   a panic inside a transition-system callback is caught, recorded,
//!   retried, and — if it persists — its state quarantined while the
//!   rest of the frontier keeps draining.
//!
//! [`StopReason`] reports *why* the search ended, so callers can tell
//! a complete result from one truncated by a deadline, a budget, or a
//! memory downgrade ladder that ran out of rungs.

use std::fmt;
use std::path::PathBuf;

/// A hard error: the run could not be started (or resumed) as asked.
///
/// Degradations that happen *during* a run never surface here — they
/// are recorded as [`ExploreWarning`]s so partial results survive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// Checkpointing or resuming was requested with a strategy that
    /// cannot replay a frontier (iterative deepening re-runs rounds,
    /// random walks keep no frontier).
    UnsupportedStrategy {
        /// Debug rendering of the offending strategy.
        strategy: String,
    },
    /// A configuration value is unusable (e.g. a zero shard count
    /// after clamping, or an empty checkpoint path).
    InvalidConfig {
        /// What is wrong.
        message: String,
    },
    /// An I/O operation on a checkpoint file failed fatally.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The operation (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The OS error rendered as text.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::UnsupportedStrategy { strategy } => write!(
                f,
                "checkpoint/resume and disk spill require a DFS or BFS strategy, got {strategy}"
            ),
            ExploreError::InvalidConfig { message } => {
                write!(f, "invalid exploration config: {message}")
            }
            ExploreError::Io { path, op, message } => {
                write!(
                    f,
                    "checkpoint {op} failed for {}: {message}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Why a checkpoint file was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorruptReason {
    /// The file is shorter than the fixed header.
    TooShort,
    /// The magic bytes are not `SQWM`.
    BadMagic,
    /// The version byte is newer than this build understands.
    UnsupportedVersion(u8),
    /// The trailing checksum does not match the contents.
    ChecksumMismatch,
    /// A length or enum field decodes to an impossible value.
    Malformed(&'static str),
    /// The checkpoint was taken of a different system (the initial
    /// state fingerprints differ).
    SystemMismatch,
    /// Replaying a stored frontier/behavior path through the current
    /// system failed — the system is nondeterministic or changed.
    ReplayFailed(&'static str),
}

impl fmt::Display for CorruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptReason::TooShort => write!(f, "file shorter than the header"),
            CorruptReason::BadMagic => write!(f, "bad magic bytes"),
            CorruptReason::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CorruptReason::ChecksumMismatch => write!(f, "checksum mismatch"),
            CorruptReason::Malformed(what) => write!(f, "malformed field: {what}"),
            CorruptReason::SystemMismatch => {
                write!(f, "checkpoint was taken of a different system")
            }
            CorruptReason::ReplayFailed(what) => write!(f, "frontier replay failed: {what}"),
        }
    }
}

/// A non-fatal degradation recorded during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreWarning {
    /// `--resume` was given but the file could not be read; the run
    /// started fresh.
    ResumeUnreadable {
        /// The checkpoint path.
        path: PathBuf,
        /// The OS error rendered as text.
        message: String,
    },
    /// `--resume` was given but the file failed validation; the run
    /// started fresh.
    ResumeCorrupt {
        /// The checkpoint path.
        path: PathBuf,
        /// What failed.
        reason: CorruptReason,
    },
    /// A checkpoint save failed; the run continued (a later save may
    /// still succeed).
    CheckpointSaveFailed {
        /// The checkpoint path.
        path: PathBuf,
        /// The OS error rendered as text.
        message: String,
    },
    /// The memory budget forced the visited set down one rung of the
    /// degradation ladder (exact → fp128 → fp64).
    MemoryDowngrade {
        /// Representation before the downgrade.
        from: &'static str,
        /// Representation after the downgrade.
        to: &'static str,
    },
    /// A resume downgraded the configured visited mode (checkpoints
    /// store fingerprints, so an exact visited set cannot be restored
    /// exactly).
    ResumeVisitedDowngrade {
        /// The configured mode.
        requested: &'static str,
        /// The mode actually restored.
        restored: &'static str,
    },
    /// The infallible [`crate::explore`] entry point was asked for
    /// checkpoint/resume durability it cannot honor (e.g. with a
    /// random-walk strategy); the run proceeded without it. Use
    /// [`crate::try_explore`] to make this an error instead.
    DurabilityIgnored {
        /// Why durability was dropped.
        message: String,
    },
    /// The spill store could not be opened or suffered an unrecoverable
    /// I/O failure (e.g. disk full); spilling stopped and the run fell
    /// back to the in-RAM lossy degradation ladder.
    SpillFailed {
        /// What failed.
        message: String,
    },
    /// A spill segment failed validation (torn write, flipped bits,
    /// injected fault) and was moved to `<spill-dir>/quarantine/`. Its
    /// fingerprints are conservatively treated as unvisited — sound,
    /// just slower.
    SpillQuarantined {
        /// The segment file.
        path: PathBuf,
        /// What failed.
        message: String,
    },
    /// A spilled frontier segment was lost to corruption; this many
    /// pending jobs could not be reloaded and the run is truncated.
    SpillFrontierLost {
        /// Jobs that could not be reloaded.
        jobs: u64,
    },
    /// A resume found spill segments it could not adopt (no spill dir
    /// configured, or the shard count changed); their entries read as
    /// unvisited, which is sound but repeats work.
    SpillIgnored {
        /// How many manifest segments were ignored.
        segments: usize,
    },
}

impl fmt::Display for ExploreWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreWarning::ResumeUnreadable { path, message } => write!(
                f,
                "cannot read checkpoint {} ({message}); starting fresh",
                path.display()
            ),
            ExploreWarning::ResumeCorrupt { path, reason } => write!(
                f,
                "checkpoint {} rejected ({reason}); starting fresh",
                path.display()
            ),
            ExploreWarning::CheckpointSaveFailed { path, message } => {
                write!(f, "checkpoint save to {} failed: {message}", path.display())
            }
            ExploreWarning::MemoryDowngrade { from, to } => write!(
                f,
                "memory budget exceeded: visited set downgraded {from} -> {to}"
            ),
            ExploreWarning::ResumeVisitedDowngrade {
                requested,
                restored,
            } => write!(
                f,
                "resume restored a {restored} visited set (configured: {requested})"
            ),
            ExploreWarning::DurabilityIgnored { message } => {
                write!(f, "checkpoint/resume ignored: {message}")
            }
            ExploreWarning::SpillFailed { message } => {
                write!(f, "disk spill disabled: {message}")
            }
            ExploreWarning::SpillQuarantined { path, message } => {
                write!(f, "spill segment {} quarantined: {message}", path.display())
            }
            ExploreWarning::SpillFrontierLost { jobs } => {
                write!(
                    f,
                    "spilled frontier segment lost: {jobs} pending jobs dropped"
                )
            }
            ExploreWarning::SpillIgnored { segments } => {
                write!(
                    f,
                    "{segments} spill segment(s) from the checkpoint ignored (treated as unvisited)"
                )
            }
        }
    }
}

/// What kind of fault an [`ExploreIncident`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentKind {
    /// A transition-system callback (`agent_groups`,
    /// `terminal_behavior`) panicked during expansion.
    ExpansionPanic,
    /// The state's `Hash`/`Eq` panicked while entering the visited
    /// set; the state is quarantined without retry (its dedup status
    /// is unknowable).
    InsertPanic,
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidentKind::ExpansionPanic => write!(f, "expansion panic"),
            IncidentKind::InsertPanic => write!(f, "visited-insert panic"),
        }
    }
}

/// One recovered worker fault: a panic caught at a transition
/// boundary. The panicking state is retried up to
/// [`max_retries`](crate::ExploreConfig::max_retries) times, then
/// quarantined; either way the rest of the frontier keeps draining.
#[derive(Clone, Debug)]
pub struct ExploreIncident {
    /// What faulted.
    pub kind: IncidentKind,
    /// fp64 fingerprint of the faulting state (stable run-to-run).
    pub state_fp: u64,
    /// Depth of the faulting state.
    pub depth: usize,
    /// Which expansion attempt this was (0 = first).
    pub attempt: u8,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl fmt::Display for ExploreIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at state {:016x} depth {} (attempt {}): {}",
            self.kind, self.state_fp, self.depth, self.attempt, self.message
        )
    }
}

/// Why the search ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopReason {
    /// The frontier drained: the bounded state space is exhausted.
    #[default]
    Completed,
    /// The wall-clock deadline fired.
    DeadlineExpired,
    /// The `max_states` budget was reached.
    StateBudget,
    /// The memory budget was exceeded with no downgrade rung left.
    MemoryBudget,
}

impl StopReason {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            StopReason::Completed => 0,
            StopReason::DeadlineExpired => 1,
            StopReason::StateBudget => 2,
            StopReason::MemoryBudget => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            1 => StopReason::DeadlineExpired,
            2 => StopReason::StateBudget,
            3 => StopReason::MemoryBudget,
            _ => StopReason::Completed,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Completed => write!(f, "completed"),
            StopReason::DeadlineExpired => write!(f, "deadline expired"),
            StopReason::StateBudget => write!(f, "state budget reached"),
            StopReason::MemoryBudget => write!(f, "memory budget reached"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_round_trips() {
        for r in [
            StopReason::Completed,
            StopReason::DeadlineExpired,
            StopReason::StateBudget,
            StopReason::MemoryBudget,
        ] {
            assert_eq!(StopReason::from_u8(r.as_u8()), r);
        }
    }

    #[test]
    fn displays_are_informative() {
        let e = ExploreError::Io {
            path: PathBuf::from("/tmp/x.ckpt"),
            op: "write",
            message: "disk full".into(),
        };
        assert!(e.to_string().contains("x.ckpt"));
        let w = ExploreWarning::MemoryDowngrade {
            from: "exact",
            to: "fp128",
        };
        assert!(w.to_string().contains("exact -> fp128"));
        let i = ExploreIncident {
            kind: IncidentKind::ExpansionPanic,
            state_fp: 0xDEAD,
            depth: 3,
            attempt: 1,
            message: "boom".into(),
        };
        assert!(i.to_string().contains("boom"));
    }
}
