#!/usr/bin/env bash
# The offline CI gate: everything here must pass without network access
# (the default workspace has no registry dependencies; the Criterion
# bench harness lives in the excluded `crates/bench` package).
#
#   scripts/ci.sh          # full gate: build, test, clippy, fmt
#   scripts/ci.sh quick    # build + test only

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --features fault-injection (fault-tolerance differential)"
cargo test -q --features fault-injection --test fault_injection
cargo test -q -p seqwm-explore --features fault-injection

if [ "${1:-full}" != "quick" ]; then
    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings

    echo "==> cargo clippy --all-targets --features fault-injection -- -D warnings"
    cargo clippy --all-targets --features fault-injection -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --check
fi

echo "==> CI gate passed"
