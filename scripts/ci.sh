#!/usr/bin/env bash
# The offline CI gate: everything here must pass without network access
# (the workspace, including the `seqwm-bench` harness, has no registry
# dependencies).
#
#   scripts/ci.sh          # full gate: build, test, bench, clippy, fmt
#   scripts/ci.sh quick    # build + test only

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --features fault-injection (fault-tolerance differential)"
cargo test -q --features fault-injection --test fault_injection
cargo test -q --features fault-injection --test fuzz_smoke
cargo test -q -p seqwm-explore --features fault-injection

echo "==> out-of-core spill (sb-ring-4: spilled run must match in-RAM bit-for-bit)"
# The spilled run pushes every eligible visited shard to disk
# (--spill-budget-mb 0) and must report the exact same states, dedup
# hits, transitions, and behavior set as the in-RAM run — spilling is a
# representation change, never a semantic one. The disk-fault rerun
# (torn writes, read errors, ENOSPC at fixed seeds) lives in the
# spill_differential suite below and is gated on zero crashes and
# unchanged verdicts.
spill_tmp="$(mktemp -d)"
for i in 0 1 2 3; do
    next=$(( (i + 1) % 4 ))
    printf 'store[rlx](sr4_x%d, 1); a := load[rlx](sr4_x%d); return a;' "$i" "$next" \
        > "$spill_tmp/t$i.lit"
done
run_sb4() {
    # Everything but the timing line and the spill counters is
    # schedule-independent and must be byte-identical.
    target/release/seqwm explore "$spill_tmp"/t0.lit "$spill_tmp"/t1.lit \
        "$spill_tmp"/t2.lit "$spill_tmp"/t3.lit --max-states 8000 --stats "$@" \
        | grep -v '^workers:' | grep -v '^spill:'
}
run_sb4 > "$spill_tmp/base.out"
run_sb4 --spill-dir "$spill_tmp/shards" --spill-budget-mb 0 > "$spill_tmp/spill.out"
if ! diff -u "$spill_tmp/base.out" "$spill_tmp/spill.out"; then
    echo "spilled sb-ring-4 run diverged from the in-RAM run"
    exit 1
fi
rm -rf "$spill_tmp"
cargo test -q --features fault-injection --test spill_differential

echo "==> por-soundness (reduction on/off behavior equality + planted-bug detection)"
# The battery runs every ReductionRules toggle (sleep/ample/na-write/
# shared-read/atomic-write) individually and together, raw engine and
# canonical PS^na adapter, at fixed budgets — all behavior sets must
# equal the unreduced/legacy baselines. The planted-bug leg proves the
# methodology detects an unsound independence rule.
cargo test -q --test por_soundness
cargo test -q --features fault-injection --test validation_catches_bugs planted_por_bug

echo "==> model-differential (cross-backend behavior equality under LDRF gates)"
# Release profile: the corpus leg runs unreduced LDRF scans plus a full
# PS^na enumeration per gated case, which is 5x slower in debug. The
# fault-injection variant adds the planted-unsound backend leg: a
# deliberately behavior-dropping backend must diverge from every sound
# one, proving the differential methodology has teeth.
cargo test -q --release --test model_differential
cargo test -q --release --features fault-injection --test model_differential

echo "==> optimizer conformance battery (validated passes + planted refutations)"
# Every pass over the litmus corpus and generated programs, each rewrite
# pushed through its translation-validation obligation, plus end-to-end
# memo-cache determinism (cached and fresh verdicts must agree). The
# fault-injection variant adds the planted-unsound leg: one deliberately
# broken sibling per new pass family, every one of which the validator
# must refute. Release profile: the PS^na differential obligations run
# a bounded exploration per changed stage.
cargo test -q --release --test opt_validation
cargo test -q --release --features fault-injection --test opt_validation
cargo test -q --release --features chaos --test opt_validation cache_chaos
cargo test -q --release -p seqwm-opt --features fault-injection
cargo test -q --release -p seqwm-opt --test pass_props

echo "==> seqwm fuzz (fixed-seed differential campaign over the real passes)"
# Time-boxed by deterministic budgets (SEQ fuel + engine deadline), not
# wall-clock: pathological cases quarantine as incidents, which exit 0.
# Only a genuine oracle violation (exit 8) fails the gate.
fuzz_corpus="$(mktemp -d)"
bench_out="$(mktemp -d)"
trap 'rm -rf "$fuzz_corpus" "$bench_out"' EXIT
target/release/seqwm fuzz --cases 100 --seed 11 --workers 2 \
    --corpus "$fuzz_corpus" --seq-fuel 10000 --deadline-ms 500

echo "==> seqwm serve (end-to-end smoke + daemon probe, hard 300s box)"
# The serve_smoke suite spawns the real daemon over TCP: round trip,
# persistent-cache hit, budget errors, SIGKILL + checkpoint resume, and
# the exit-code contract (2 usage / 10 serve). The explicit timeout is
# the backstop against a wedged daemon holding CI hostage — the tests
# themselves finish in seconds.
timeout 300 cargo test -q --test serve_smoke

# Liveness probe against a fresh daemon: proves the release binary's
# serve path works outside the test harness (bind, stats round trip,
# clean shutdown), again time-boxed.
serve_state="$(mktemp -d)"
target/release/seqwm serve --port 0 --state-dir "$serve_state" \
    > "$serve_state/stdout" &
serve_pid=$!
for _ in $(seq 1 50); do
    serve_addr="$(sed -n 's/^seqwm-serve listening on //p' "$serve_state/stdout")"
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
[ -n "$serve_addr" ] || { echo "daemon never reported an address"; exit 1; }
timeout 30 target/release/seqwm serve --probe "$serve_addr"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
rm -rf "$serve_state"

echo "==> seqwm serve-chaos (hostile clients, overload, drain, corrupt state)"
# The chaos suite drives a fixed-seed fault proxy (torn frames,
# disconnects, stalls, garbage) and FileChaos corruption at the real
# daemon, plus the slow-loris / oversized-frame / overload / drain
# legs. Deterministic seeds: a failure replays identically anywhere.
timeout 300 cargo test -q --features chaos --test serve_chaos

# Short soak, same fixed seed, gated on exactly one thing: the daemon
# never crashes while concurrent clients misbehave.
timeout 120 cargo test -q --features chaos --test serve_chaos -- --ignored

echo "==> seqwm bench (quick suite + regression gate vs committed baseline)"
# The threshold is deliberately generous: CI machines are noisy, and a
# genuine hot-path regression shows up as a multiple, not a percentage.
# The 2ms absolute floor keeps the microsecond-scale optimizer benches
# out of the noise entirely. Exit 9 = regression, fails the gate.
target/release/seqwm bench --quick --name ci --out "$bench_out" \
    --compare benchmarks/BENCH_baseline.json --threshold 300 --min-delta-us 2000

if [ "${1:-full}" != "quick" ]; then
    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings

    echo "==> cargo clippy --all-targets --features fault-injection -- -D warnings"
    cargo clippy --all-targets --features fault-injection -- -D warnings

    echo "==> cargo clippy --all-targets --features chaos -- -D warnings"
    cargo clippy --all-targets --features chaos -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --check
fi

echo "==> CI gate passed"
