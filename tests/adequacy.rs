//! Experiment E8: differential testing of the adequacy theorem (Thm. 6.2).
//!
//! The theorem states: if `σ_tgt ⊑_w σ_src` in SEQ (with a deterministic
//! source), then `σ_tgt ∥ ctx ⊑ σ_src ∥ ctx` in PS^na for *any* concurrent
//! context. The Coq proof is out of scope for a Rust reproduction (see
//! DESIGN.md), so we *test* the implication:
//!
//! 1. take source/target pairs related by SEQ refinement — both the
//!    hand-written corpus cases and optimizer outputs on random programs —
//! 2. compose each side with context threads,
//! 3. exhaustively explore both compositions under PS^na, and
//! 4. check behavior-set inclusion (Def. 5.3).
//!
//! A violation would be a counterexample to the paper's main theorem (or
//! to this reproduction); none has been found.

use seqwm_explore::SplitMix64;
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_litmus::gen::{random_context, random_program, GenConfig};
use seqwm_litmus::transform::{transform_corpus, Expectation};
use seqwm_opt::pipeline::{Pipeline, PipelineConfig};
use seqwm_promising::machine::{explore, ps_behaviors_refine};
use seqwm_promising::thread::PsConfig;
use seqwm_seq::refine::{refines_advanced_or_simple_config, RefineConfig};

/// Checks `tgt ∥ ctxs ⊑ src ∥ ctxs` in PS^na by exhaustive exploration.
#[track_caller]
fn assert_contextual_refinement(src: &Program, tgt: &Program, ctxs: &[Program], what: &str) {
    let mut src_threads = vec![src.clone()];
    src_threads.extend(ctxs.iter().cloned());
    let mut tgt_threads = vec![tgt.clone()];
    tgt_threads.extend(ctxs.iter().cloned());
    let cfg = PsConfig::default();
    let src_result = explore(&src_threads, &cfg);
    let tgt_result = explore(&tgt_threads, &cfg);
    assert!(
        !src_result.truncated && !tgt_result.truncated,
        "{what}: exploration truncated; shrink the context"
    );
    if let Err(unmatched) = ps_behaviors_refine(&tgt_result.behaviors, &src_result.behaviors) {
        panic!(
            "ADEQUACY VIOLATION ({what}): target behavior {unmatched} has no \
             matching source behavior.\nsrc:\n{src}\ntgt:\n{tgt}\nsource behaviors: {:?}",
            src_result.behaviors
        );
    }
}

/// Fixed contexts exercising the footprint of the corpus cases (which use
/// locations x, y, z with na/atomic roles as in the paper).
fn corpus_contexts() -> Vec<Vec<Program>> {
    let parse = |s: &str| parse_program(s).unwrap();
    vec![
        // The empty context.
        vec![],
        // A reader of the atomic flag + na data (MP-shaped).
        vec![parse(
            "f := load[acq](y); if (f == 1) { d := load[na](x); } return f;",
        )],
        // A writer publishing na data through the release flag.
        vec![parse("store[na](x, 2); store[rel](y, 1); return 0;")],
    ]
}

/// The corpus cases whose non-atomic locations are only `x` (safe to
/// compose with the contexts above without violating no-mixing).
fn composable_corpus() -> Vec<(String, Program, Program)> {
    transform_corpus()
        .into_iter()
        .filter(|c| c.expectation != Expectation::Unsound)
        .map(|c| (c.name.to_owned(), c.src_program(), c.tgt_program()))
        .filter(|(_, s, t)| {
            // Context threads use x non-atomically and y/z atomically; skip
            // corpus cases that use them differently, and loops (exploration
            // cost).
            let ok_modes = |p: &Program| {
                p.na_locs().iter().all(|l| l.name() == "x")
                    && p.atomic_locs()
                        .iter()
                        .all(|l| l.name() == "y" || l.name() == "z")
            };
            ok_modes(s) && ok_modes(t) && !s.body.has_loop() && !t.body.has_loop()
        })
        .collect()
}

#[test]
fn adequacy_on_corpus_cases_under_contexts() {
    let contexts = corpus_contexts();
    let cases = composable_corpus();
    assert!(
        cases.len() >= 10,
        "composable corpus too small: {}",
        cases.len()
    );
    for (name, src, tgt) in &cases {
        for (i, ctxs) in contexts.iter().enumerate() {
            assert_contextual_refinement(src, tgt, ctxs, &format!("{name} / ctx{i}"));
        }
    }
}

#[test]
fn adequacy_on_optimizer_outputs_of_random_programs() {
    let gen_cfg = GenConfig {
        max_stmts: 5,
        ..GenConfig::default()
    };
    let refine_cfg = RefineConfig {
        max_steps: 64,
        ..RefineConfig::default()
    };
    let pipeline = Pipeline::new(PipelineConfig::default());
    let mut rng = SplitMix64::new(0xADE0_ACAD);
    let mut optimized_pairs = 0;
    let mut checked = 0;
    for round in 0..40 {
        let src = random_program(&mut rng, &gen_cfg);
        let out = pipeline.optimize(&src);
        if out.program == src {
            continue;
        }
        optimized_pairs += 1;
        // Step 1: the optimizer output refines its input in SEQ.
        refines_advanced_or_simple_config(&src, &out.program, &refine_cfg).unwrap_or_else(|e| {
            panic!("optimizer output does not refine input in SEQ (round {round}): {e}\n{src}")
        });
        // Step 2: contextual refinement in PS^na under a random context.
        let ctx = random_context(&mut rng, &gen_cfg);
        assert_contextual_refinement(&src, &out.program, &[ctx], &format!("random round {round}"));
        checked += 1;
        if checked >= 12 {
            break; // enough exploration work for one test
        }
    }
    assert!(
        optimized_pairs >= 5,
        "generator produced too few optimizable programs ({optimized_pairs})"
    );
}

#[test]
fn adequacy_fails_for_unsound_transformations() {
    // Sanity check that the harness has teeth: an *unsound* transformation
    // (same-location load/store reorder, Example 2.5) must be caught by
    // some context. Here the single-threaded composition already differs.
    let src = parse_program("a := load[na](x); store[na](x, 1); return a;").unwrap();
    let tgt = parse_program("store[na](x, 1); a := load[na](x); return a;").unwrap();
    let cfg = PsConfig::default();
    let s = explore(&[src], &cfg);
    let t = explore(&[tgt], &cfg);
    assert!(
        ps_behaviors_refine(&t.behaviors, &s.behaviors).is_err(),
        "the harness must distinguish an unsound reordering"
    );
}
