//! Cross-validation of the two implementations of advanced refinement:
//! the game-based checker (`seqwm_seq::advanced`, App. A's Fig. 6) against
//! the literal Fig. 2 relation instantiated at concrete oracles
//! (`seqwm_seq::oracle`, Def. 3.2/3.3).
//!
//! * If the game says `⊑_w` HOLDS, then checking under *any* concrete
//!   oracle must pass (Def. 3.3 is a ∀ over oracles).
//! * If the game says `⊑_w` FAILS on a corpus case, some concrete oracle
//!   in our family must refute it (our corpus refutations are all
//!   witnessed by the free or a pinning oracle).

use seqwm_lang::Value;
use seqwm_litmus::transform::{transform_corpus, Expectation};
use seqwm_seq::machine::{EnumDomain, Memory, SeqState};
use seqwm_seq::oracle::{check_under_oracle, FreeOracle, NoGainOracle, PinReadsOracle};
use seqwm_seq::refine::{domain_for, RefineConfig};
use seqwm_seq::LocSet;

fn initial_configs(dom: &EnumDomain) -> Vec<(LocSet, Memory)> {
    let full: LocSet = dom.na_locs.iter().copied().collect();
    let zero = Memory::new();
    let ones = Memory::from_pairs(dom.na_locs.iter().map(|&x| (x, Value::Int(1))));
    vec![
        (LocSet::new(), zero.clone()),
        (full.clone(), zero),
        (full, ones),
    ]
}

#[test]
fn holding_cases_pass_under_every_concrete_oracle() {
    let cfg = RefineConfig {
        max_steps: 64,
        ..RefineConfig::default()
    };
    let mut checked = 0;
    for case in transform_corpus() {
        if case.expectation == Expectation::Unsound {
            continue;
        }
        let src = case.src_program();
        let tgt = case.tgt_program();
        if src.body.has_loop() || tgt.body.has_loop() {
            continue; // behaviour enumeration with loops is unbounded
        }
        let dom = domain_for(&src, &tgt, &cfg).expect("checkable");
        for (perm, mem) in initial_configs(&dom) {
            let s = SeqState::new(&src, perm.clone(), LocSet::new(), mem.clone());
            let t = SeqState::new(&tgt, perm, LocSet::new(), mem);
            assert!(
                check_under_oracle(&s, &t, &dom, &FreeOracle).is_ok(),
                "{}: free oracle refutes a holding case",
                case.name
            );
            for loc in &dom.na_locs {
                let o = NoGainOracle { loc: *loc };
                assert!(
                    check_under_oracle(&s, &t, &dom, &o).is_ok(),
                    "{}: no-gain({loc}) oracle refutes a holding case",
                    case.name
                );
            }
            for loc in src.atomic_locs().union(&tgt.atomic_locs()) {
                for v in [Value::Int(0), Value::Int(1)] {
                    let o = PinReadsOracle {
                        loc: *loc,
                        value: v,
                        pin_choose: false,
                    };
                    assert!(
                        check_under_oracle(&s, &t, &dom, &o).is_ok(),
                        "{}: pin({loc}≔{v}) oracle refutes a holding case",
                        case.name
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(checked >= 50, "cross-validated {checked} configurations");
}

#[test]
fn unsound_cases_are_refuted_by_some_concrete_oracle() {
    let cfg = RefineConfig {
        max_steps: 64,
        ..RefineConfig::default()
    };
    let mut refuted_cases = 0;
    let mut total = 0;
    for case in transform_corpus() {
        if case.expectation != Expectation::Unsound {
            continue;
        }
        let src = case.src_program();
        let tgt = case.tgt_program();
        if src.body.has_loop() || tgt.body.has_loop() {
            continue;
        }
        total += 1;
        let dom = domain_for(&src, &tgt, &cfg).expect("checkable");
        let mut refuted = false;
        'configs: for (perm, mem) in initial_configs(&dom) {
            let s = SeqState::new(&src, perm.clone(), LocSet::new(), mem.clone());
            let t = SeqState::new(&tgt, perm, LocSet::new(), mem);
            if check_under_oracle(&s, &t, &dom, &FreeOracle).is_err() {
                refuted = true;
                break 'configs;
            }
            for loc in src.atomic_locs().union(&tgt.atomic_locs()) {
                for v in [Value::Int(0), Value::Int(1)] {
                    let o = PinReadsOracle {
                        loc: *loc,
                        value: v,
                        pin_choose: true,
                    };
                    if check_under_oracle(&s, &t, &dom, &o).is_err() {
                        refuted = true;
                        break 'configs;
                    }
                }
            }
        }
        assert!(
            refuted,
            "{}: no concrete oracle refuted an unsound case (checker families disagree)",
            case.name
        );
        refuted_cases += 1;
    }
    assert_eq!(refuted_cases, total);
    assert!(total >= 8);
}
