//! Cross-backend differential equality: the DRF theorems say that on
//! race-free programs every registered memory model enumerates the
//! same behavior set, so the backends can be differentially tested
//! against each other with the LDRF checkers as the gate.
//!
//! Three legs:
//!
//! 1. **Corpus × backends.** Every concurrent litmus case is gated by
//!    the runtime checkers: LDRF-SC race-free cases must agree across
//!    *all five* backends; cases that only pass LDRF-RA/PF must agree
//!    between the promise-free and full PS^na backends.
//! 2. **Planted-racy.** On a racy program the gate refuses every
//!    downgrade and PS^na is *strictly* weaker (it reaches ⊥ where SC
//!    cannot) — the equality above is not vacuous.
//! 3. **Acceptance.** `--model auto` on the race-free
//!    `litmus::scaling` na-disjoint-4 family completes in strictly
//!    fewer states than `--model psna` spends before its budget stops
//!    it, with identical behavior sets — the committed
//!    `scaling/na-disjoint-4/{psna,drf-gated}` bench pair measures the
//!    same two runs.
//!
//! With `--features fault-injection` a fourth leg proves the
//! methodology detects an unsound backend: the planted backend (drops
//! one behavior) must diverge from every sound backend on a race-free
//! program, which is exactly the signal the fuzz `model-diff` oracle
//! reports as a violation.

use seqwm_litmus::concurrent::concurrent_corpus;
use seqwm_litmus::scaling::na_disjoint;
use seqwm_models::{
    backend, ldrf_pf_ra, ldrf_sc, plan_explore, ModelChoice, ModelKind, ModelOpts, RaceVerdict,
};
use seqwm_promising::machine::{ps_behaviors_refine, PsBehavior};

/// Per-case model options: the case's own PS bounds (promises,
/// multi-message NA, state budgets) drive every PS-family backend.
fn case_opts(ps: seqwm_promising::thread::PsConfig) -> ModelOpts {
    ModelOpts {
        ps,
        ..ModelOpts::default()
    }
}

/// Runs the rung-1 leg on one composition: LDRF-SC race-free must
/// make all five backends enumerate the same behavior set.
fn assert_all_backends_agree(name: &str, progs: &[seqwm_lang::Program], opts: &ModelOpts) {
    let (sc_check, sc_expl) = ldrf_sc(progs, opts);
    assert_eq!(sc_check.verdict, RaceVerdict::RaceFree, "{name}");
    for kind in [
        ModelKind::Sc,
        ModelKind::ScFence,
        ModelKind::Ra,
        ModelKind::Pf,
        ModelKind::PsNa,
    ] {
        let e = backend(kind).explore(progs, opts);
        assert!(!e.truncated, "{name}: {kind} truncated");
        assert_eq!(
            e.behaviors, sc_expl.behaviors,
            "{name}: {kind} diverges from SC on an LDRF-SC race-free case"
        );
    }
}

#[test]
fn corpus_race_free_cases_agree_across_backends() {
    let mut sc_gated = 0usize;
    let mut pf_gated = 0usize;
    for case in concurrent_corpus() {
        let progs = case.programs();
        let opts = case_opts(case.config());

        // Rung 1: LDRF-SC race-free ⟹ all five backends agree. The
        // corpus is adversarial (its whole point is conflicting
        // accesses), so this rung rarely fires here — the scaling
        // family below exercises it unconditionally.
        let (sc_check, sc_expl) = ldrf_sc(&progs, &opts);
        if sc_check.verdict == RaceVerdict::RaceFree {
            sc_gated += 1;
            for kind in [
                ModelKind::Sc,
                ModelKind::ScFence,
                ModelKind::Ra,
                ModelKind::Pf,
                ModelKind::PsNa,
            ] {
                let e = backend(kind).explore(&progs, &opts);
                assert!(!e.truncated, "{}: {kind} truncated", case.name);
                assert_eq!(
                    e.behaviors, sc_expl.behaviors,
                    "{}: {kind} diverges from SC on an LDRF-SC race-free case",
                    case.name
                );
            }
            continue;
        }

        // Rung 2: LDRF-RA or LDRF-PF race-free ⟹ the promise-free
        // enumeration is already the full PS^na one.
        let (ra_check, pf_check, pf_expl) = ldrf_pf_ra(&progs, &opts);
        if ra_check.verdict == RaceVerdict::RaceFree || pf_check.verdict == RaceVerdict::RaceFree {
            pf_gated += 1;
            let psna = backend(ModelKind::PsNa).explore(&progs, &opts);
            if psna.truncated || pf_expl.truncated {
                continue; // incomparable under this case's budget
            }
            assert_eq!(
                pf_expl.behaviors, psna.behaviors,
                "{}: promises add behaviors despite an LDRF-PF/RA race-free verdict",
                case.name
            );
        }
    }
    // The PF gate must actually fire on the corpus (the rel/acq
    // message-passing cases), or the equality above is vacuous.
    assert!(
        pf_gated >= 3,
        "only {pf_gated} corpus cases were PF-gated ({sc_gated} SC-gated)"
    );

    // Rung 1 unconditionally, on a composition that is SC-conflict-free
    // by construction (disjoint locations per thread). A minimal pair
    // rather than the scaling family: full PS^na promise synthesis
    // truncates its default state budget already at na-disjoint-2, and
    // the point here is agreement, not scale — the acceptance test
    // below covers the blowup.
    let disjoint: Vec<seqwm_lang::Program> = [
        "store[na](md_a, 1); a := load[na](md_a); return a;",
        "store[na](md_b, 2); b := load[na](md_b); return b;",
    ]
    .iter()
    .map(|s| seqwm_lang::parser::parse_program(s).expect("parses"))
    .collect();
    assert_all_backends_agree("na-disjoint-min", &disjoint, &ModelOpts::default());
}

#[test]
fn planted_racy_program_keeps_psna_strictly_weaker() {
    let progs: Vec<seqwm_lang::Program> = [
        "store[na](md_race, 1); return 0;",
        "store[na](md_race, 2); return 0;",
    ]
    .iter()
    .map(|s| seqwm_lang::parser::parse_program(s).expect("parses"))
    .collect();
    let opts = ModelOpts::default();

    // Every checker refuses the downgrade…
    let (sc_check, _) = ldrf_sc(&progs, &opts);
    let (ra_check, pf_check, _) = ldrf_pf_ra(&progs, &opts);
    for c in [&sc_check, &ra_check, &pf_check] {
        assert_eq!(c.verdict, RaceVerdict::Racy, "{}", c.level.name());
    }

    // …and rightly so: PS^na reaches ⊥ where SC cannot. A 5k state
    // cap suffices: both PS^na behaviors (⊥ and 0∥0) surface inside
    // the first thousand states of the promise-synthesis frontier.
    let mut capped = opts.clone();
    capped.ps.max_states = 5_000;
    let sc = backend(ModelKind::Sc).explore(&progs, &opts);
    let psna = backend(ModelKind::PsNa).explore(&progs, &capped);
    assert!(psna.behaviors.contains(&PsBehavior::Ub));
    assert!(!sc.behaviors.contains(&PsBehavior::Ub));
    assert!(
        ps_behaviors_refine(&sc.behaviors, &psna.behaviors).is_ok(),
        "SC still refines PS^na"
    );
    assert_ne!(sc.behaviors, psna.behaviors, "strictly weaker, not equal");
}

#[test]
fn drf_gated_na_disjoint_4_beats_full_psna() {
    let progs = na_disjoint(4).programs();

    // The gated run completes the whole family.
    let auto = plan_explore(&progs, ModelChoice::Auto, &ModelOpts::default());
    assert_eq!(auto.chosen, ModelKind::Sc, "checks: {:?}", auto.checks);
    assert!(auto.reused_scan);
    assert!(auto.complete(), "gated run must finish the family");

    // Full PS^na cannot even finish inside a budget larger than the
    // gated run's entire spend (promise synthesis explodes on 8 NA
    // writes); it stops at the cap having found the same behaviors.
    let mut capped = ModelOpts::default();
    capped.ps.max_states = 2_000;
    let psna = plan_explore(&progs, ModelChoice::Fixed(ModelKind::PsNa), &capped);
    assert!(psna.exploration.truncated, "2k states must not suffice");
    assert!(
        auto.total_states() < psna.total_states(),
        "gated {} (complete) vs psna {} (truncated at its cap)",
        auto.total_states(),
        psna.total_states()
    );
    assert_eq!(
        auto.exploration.behaviors, psna.exploration.behaviors,
        "identical behavior sets"
    );
}

#[cfg(feature = "fault-injection")]
#[test]
fn planted_unsound_backend_is_detected_differentially() {
    // Race-free rel/acq flag: ≥ 2 behaviors, so dropping the greatest
    // one is observable.
    let progs: Vec<seqwm_lang::Program> = [
        "store[rel](md_flag, 1); return 0;",
        "a := load[acq](md_flag); return a;",
    ]
    .iter()
    .map(|s| seqwm_lang::parser::parse_program(s).expect("parses"))
    .collect();
    let opts = ModelOpts::default();
    let (_, pf_check, _) = ldrf_pf_ra(&progs, &opts);
    assert_eq!(pf_check.verdict, RaceVerdict::RaceFree);

    let planted = backend(ModelKind::PlantedUnsound).explore(&progs, &opts);
    for kind in [
        ModelKind::Sc,
        ModelKind::ScFence,
        ModelKind::Ra,
        ModelKind::Pf,
    ] {
        let honest = backend(kind).explore(&progs, &opts);
        assert_ne!(
            honest.behaviors, planted.behaviors,
            "{kind} must expose the planted backend"
        );
        assert_ne!(
            backend(kind).behavior_fingerprint(&honest),
            backend(ModelKind::PlantedUnsound).behavior_fingerprint(&planted),
        );
    }
}
