//! Partial-order-reduction soundness battery.
//!
//! Every reduction lever the engine has — sleep sets, ample sets, and
//! the NA-write / shared-read / atomic-write independence rules — must
//! preserve the *behavior set* exactly. This suite pins that down from
//! three directions:
//!
//! 1. the promise-free concurrent litmus corpus, raw engine and
//!    canonicalizing PS^na adapter, against the legacy depth-first
//!    baseline;
//! 2. the parametric scaling families (`mp-chain`, `sb-ring`,
//!    `na-disjoint`) at small `N`, against their own unreduced runs;
//! 3. every [`ReductionRules`] toggle flipped off *individually* and
//!    all together, so an unsound rule is independently falsifiable
//!    instead of being masked by the rest of the reduction.
//!
//! The canonical adapter compares behavior sets, not state counts: it
//! quotients timestamp renamings, so its `states` are incomparable with
//! the raw engine's, but the behaviors must agree on the nose.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use seqwm_explore::{ExploreConfig, ReductionRules};
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use seqwm_litmus::scaling::{mp_chain, na_disjoint, sb_ring, ScalingCase};
use seqwm_promising::machine::{explore_legacy, PsBehavior};
use seqwm_promising::search::{engine_config, explore_engine};
use seqwm_promising::thread::PsConfig;

/// One reduction variant to validate: a label plus the config knobs.
struct Variant {
    label: &'static str,
    reduction: bool,
    rules: ReductionRules,
}

/// The toggle matrix: unreduced, fully reduced, and each rule disabled
/// in isolation.
fn variants() -> Vec<Variant> {
    let all = ReductionRules::default();
    let mut out = vec![
        Variant {
            label: "unreduced",
            reduction: false,
            rules: all,
        },
        Variant {
            label: "all-rules",
            reduction: true,
            rules: all,
        },
        Variant {
            label: "no-sleep",
            reduction: true,
            rules: ReductionRules {
                sleep: false,
                ..all
            },
        },
        Variant {
            label: "no-ample",
            reduction: true,
            rules: ReductionRules {
                ample: false,
                ..all
            },
        },
        Variant {
            label: "no-na-write",
            reduction: true,
            rules: ReductionRules {
                na_write: false,
                ..all
            },
        },
        Variant {
            label: "no-shared-read",
            reduction: true,
            rules: ReductionRules {
                shared_read: false,
                ..all
            },
        },
        Variant {
            label: "no-atomic-write",
            reduction: true,
            rules: ReductionRules {
                atomic_write: false,
                ..all
            },
        },
    ];
    // Sleep off with everything else on is the strongest single lever;
    // also cover sleep on with every granting rule off (pure rule only).
    out.push(Variant {
        label: "pure-only",
        reduction: true,
        rules: ReductionRules {
            na_write: false,
            shared_read: false,
            atomic_write: false,
            ..all
        },
    });
    out
}

fn with_variant(base: &ExploreConfig, v: &Variant) -> ExploreConfig {
    ExploreConfig {
        reduction: v.reduction,
        rules: v.rules,
        ..base.clone()
    }
}

/// The promise-synthesis-heavy appendix cases explode when unreduced;
/// the cheap promise-free corpus is where the rule matrix runs.
fn is_cheap(c: &ConcurrentCase) -> bool {
    !c.promises
}

fn baselines() -> &'static Vec<(ConcurrentCase, BTreeSet<PsBehavior>)> {
    static BASELINES: OnceLock<Vec<(ConcurrentCase, BTreeSet<PsBehavior>)>> = OnceLock::new();
    BASELINES.get_or_init(|| {
        concurrent_corpus()
            .into_iter()
            .filter(is_cheap)
            .map(|c| {
                let r = explore_legacy(&c.programs(), &c.config());
                assert!(!r.truncated, "{}: legacy baseline truncated", c.name);
                (c, r.behaviors)
            })
            .collect()
    })
}

// ---------------------------------------------------------------------
// 1. Corpus: raw engine, every toggle variant, vs the legacy baseline.
// ---------------------------------------------------------------------

#[test]
fn corpus_raw_engine_behavior_equality_across_all_toggles() {
    for v in variants() {
        for (case, want) in baselines() {
            let cfg = case.config();
            let e = explore_engine(
                &case.programs(),
                &cfg,
                &with_variant(&engine_config(&cfg), &v),
            );
            assert!(!e.stats.truncated, "{} [{}]: truncated", case.name, v.label);
            assert_eq!(
                &e.behaviors, want,
                "{} [{}]: behavior sets diverge from legacy baseline",
                case.name, v.label
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. Corpus: canonical PS^na adapter, every toggle variant. The
//    quotient must be behavior-invariant even with no reduction at all.
// ---------------------------------------------------------------------

#[test]
fn corpus_canonical_adapter_behavior_equality_across_all_toggles() {
    for v in variants() {
        for (case, want) in baselines() {
            let cfg = case.config();
            let e = seqwm_promising::explore_engine_canonical(
                &case.programs(),
                &cfg,
                &with_variant(&engine_config(&cfg), &v),
            );
            assert!(!e.stats.truncated, "{} [{}]: truncated", case.name, v.label);
            assert_eq!(
                &e.behaviors, want,
                "{} [{}]: canonical adapter diverges from legacy baseline",
                case.name, v.label
            );
        }
    }
}

// ---------------------------------------------------------------------
// 3. Scaling families at N <= 4: raw + canonical, every toggle variant,
//    against the family's own unreduced raw run.
// ---------------------------------------------------------------------

fn scaling_cases() -> Vec<ScalingCase> {
    let mut out = Vec::new();
    for n in 2..=4 {
        out.push(mp_chain(n));
        // sb-ring's unreduced reference run is the matrix's cost
        // driver (every rlx load branches on every visible message)
        // and the NA grid's unreduced run exceeds the state budget at
        // n = 4 outright (every NA write branches on timestamp
        // placement), so those two families stop at 3.
        if n <= 3 {
            out.push(sb_ring(n));
            out.push(na_disjoint(n));
        }
    }
    out
}

#[test]
fn scaling_families_behavior_equality_across_all_toggles() {
    for case in scaling_cases() {
        let base = engine_config(&case.config());
        let want = case
            .explore(&ExploreConfig {
                reduction: false,
                ..base.clone()
            })
            .behaviors;
        for v in variants() {
            let raw = case.explore(&with_variant(&base, &v));
            assert!(
                !raw.stats.truncated,
                "{} [{}]: truncated",
                case.name, v.label
            );
            assert_eq!(
                raw.behaviors, want,
                "{} [{}]: raw engine diverges from unreduced run",
                case.name, v.label
            );
            let canon = case.explore_canonical(&with_variant(&base, &v));
            assert!(
                !canon.stats.truncated,
                "{} [{}]: canonical truncated",
                case.name, v.label
            );
            assert_eq!(
                canon.behaviors, want,
                "{} [{}]: canonical adapter diverges from unreduced run",
                case.name, v.label
            );
        }
    }
}

// ---------------------------------------------------------------------
// 4. The new rules must actually fire somewhere in this battery —
//    a soundness suite that never exercises its rules proves nothing.
// ---------------------------------------------------------------------

#[test]
fn battery_exercises_every_independence_rule() {
    // NA rule: the fully-commutative NA grid.
    let case = na_disjoint(3);
    let e = case.explore(&engine_config(&case.config()));
    assert!(e.stats.na_commutes > 0, "NA rule silent on na-disjoint-3");

    // Read and atomic rules need the canonical quotient on an
    // atomic-heavy family.
    let case = sb_ring(3);
    let e = case.explore_canonical(&engine_config(&case.config()));
    assert!(e.stats.read_commutes > 0, "read rule silent on sb-ring-3");
    assert!(
        e.stats.atomic_commutes > 0,
        "atomic rule silent on sb-ring-3"
    );

    // And disabling a rule must actually silence its counter while the
    // others keep firing.
    let base = engine_config(&case.config());
    let no_atomic = case.explore_canonical(&ExploreConfig {
        rules: ReductionRules {
            atomic_write: false,
            ..ReductionRules::default()
        },
        ..base
    });
    assert_eq!(no_atomic.stats.atomic_commutes, 0);
    assert!(no_atomic.stats.read_commutes > 0);
}

// ---------------------------------------------------------------------
// 5. The local-vs-write grant: a pure-local compute thread against an
//    NA-writer thread. The only cross-agent independence available is
//    the new grant (riding the na_write rule), so its counter firing
//    proves the grant is live, and the full variant matrix proves it
//    behavior-preserving.
// ---------------------------------------------------------------------

#[test]
fn battery_exercises_the_local_vs_write_grant() {
    let progs: Vec<Program> = [
        // Pure-local: silent register arithmetic, no shared access.
        "r := 1; r := r + 1; r := r + 2; return r;",
        // Only writes; same location both steps, so no write/write or
        // read/write pair exists anywhere in the product.
        "store[na](plw_x, 1); store[na](plw_x, 2); return 0;",
    ]
    .iter()
    .map(|s| parse_program(s).expect("grant case parses"))
    .collect();
    let cfg = PsConfig::default();
    let base = engine_config(&cfg);

    // Ample-set reduction would commit to the local singleton before
    // sleep sets ever see the pair, so the grant's counter is observed
    // with ample off.
    let no_ample = ExploreConfig {
        rules: ReductionRules {
            ample: false,
            ..ReductionRules::default()
        },
        ..base.clone()
    };
    let e = explore_engine(&progs, &cfg, &no_ample);
    assert!(
        e.stats.na_commutes > 0,
        "local-vs-write grant never fired (na_commutes = 0)"
    );

    // Turning the na_write toggle off must silence exactly that grant.
    let no_na = ExploreConfig {
        rules: ReductionRules {
            ample: false,
            na_write: false,
            ..ReductionRules::default()
        },
        ..base.clone()
    };
    let silenced = explore_engine(&progs, &cfg, &no_na);
    assert_eq!(silenced.stats.na_commutes, 0);

    // And the whole variant matrix must agree with the unreduced run.
    let want = explore_engine(
        &progs,
        &cfg,
        &ExploreConfig {
            reduction: false,
            ..base.clone()
        },
    )
    .behaviors;
    for v in variants() {
        let run = explore_engine(&progs, &cfg, &with_variant(&base, &v));
        assert!(!run.stats.truncated, "[{}]: truncated", v.label);
        assert_eq!(
            run.behaviors, want,
            "[{}]: local-vs-write grant changed the behavior set",
            v.label
        );
    }
}
