//! Failure injection: deliberately *unsound* "optimizations" must be
//! rejected by SEQ-based translation validation — demonstrating that the
//! validator (the Rust stand-in for the paper's Coq certification) has
//! teeth, and that each of its rejections corresponds to a real
//! weak-memory bug (witnessed under PS^na where feasible).

use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_promising::machine::{explore, ps_behaviors_refine};
use seqwm_promising::thread::PsConfig;
use seqwm_seq::advanced::refines_advanced;
use seqwm_seq::refine::{refines_simple, RefineConfig};

struct BuggyRewrite {
    name: &'static str,
    src: &'static str,
    tgt: &'static str,
    /// A context thread that exposes the bug under PS^na, if the
    /// composition is small enough to explore.
    witness_ctx: Option<&'static str>,
}

fn buggy_rewrites() -> Vec<BuggyRewrite> {
    vec![
        BuggyRewrite {
            name: "slf-across-rel-acq-pair",
            // A buggy SLF that treats the • token like ◦ across an acquire:
            // forwards 1 across a release–acquire pair (Example 2.12).
            // `print(a)` makes the acquire-read value a *defined*
            // observable: in the synchronized schedule (a = 1) the source
            // race-freely must read x = 2, while the buggy target still
            // returns the forwarded 1 — a target-only behavior. (Without
            // the print, the source's racy `undef` returns in *other*
            // schedules would absorb the difference.)
            src: "store[na](x, 1); store[rel](y, 1); a := load[acq](z); print(a); b := load[na](x); return b;",
            tgt: "store[na](x, 1); store[rel](y, 1); a := load[acq](z); print(a); b := 1; return b;",
            witness_ctx: Some(
                "f := load[acq](y); if (f == 1) { store[na](x, 2); store[rel](z, 1); return 9; } return 0;",
            ),
        },
        BuggyRewrite {
            name: "dse-removes-observed-store",
            // A buggy DSE that ignores the release-write publication: it
            // removes a store whose value escapes through the release.
            src: "store[na](x, 1); store[rel](y, 1);",
            tgt: "store[rel](y, 1);",
            witness_ctx: Some(
                "f := load[acq](y); if (f == 1) { d := load[na](x); } else { d := 1; } return d;",
            ),
        },
        BuggyRewrite {
            name: "licm-hoists-store",
            // A buggy LICM that hoists a *store* (not a load) out of a
            // conditional: unused store introduction (Example 2.10-ish).
            src: "a := load[rlx](y); if (a == 1) { store[na](x, 5); } return a;",
            tgt: "store[na](x, 5); a := load[rlx](y); return a;",
            witness_ctx: None, // refuted in SEQ; PS^na witness needs write-write race timing
        },
        BuggyRewrite {
            name: "reorder-acquire-down",
            // A buggy scheduler that sinks an acquire below a non-atomic
            // write (Example 2.9 (i)).
            // Witness: a context that reads x *before* releasing y. When
            // the source acquires y = 1, the context's read demonstrably
            // happened first and must have returned 0; the buggy target's
            // early write lets the context read 1 in that same schedule —
            // the tuple (a = 1, d = 1) is target-only.
            src: "a := load[acq](y); store[na](x, 1); return a;",
            tgt: "store[na](x, 1); a := load[acq](y); return a;",
            witness_ctx: Some(
                "d := load[na](x); store[rel](y, 1); return d;",
            ),
        },
    ]
}

#[test]
fn validator_rejects_every_injected_bug() {
    let cfg = RefineConfig::default();
    for bug in buggy_rewrites() {
        let src = parse_program(bug.src).unwrap();
        let tgt = parse_program(bug.tgt).unwrap();
        let simple = refines_simple(&src, &tgt, &cfg).unwrap();
        assert!(
            !simple.holds,
            "{}: the simple checker failed to reject an unsound rewrite",
            bug.name
        );
        let adv = refines_advanced(&src, &tgt, &cfg).unwrap();
        assert!(
            !adv.holds,
            "{}: the advanced checker failed to reject an unsound rewrite",
            bug.name
        );
    }
}

#[test]
fn rejections_correspond_to_real_psna_bugs() {
    // For the bugs with a witness context, the PS^na behavior sets really
    // do differ — SEQ's rejection is not a false positive.
    let ps_cfg = PsConfig::default();
    let mut witnessed = 0;
    for bug in buggy_rewrites() {
        let Some(ctx_src) = bug.witness_ctx else {
            continue;
        };
        let src = parse_program(bug.src).unwrap();
        let tgt = parse_program(bug.tgt).unwrap();
        let ctx: Program = parse_program(ctx_src).unwrap();
        let sb = explore(&[src, ctx.clone()], &ps_cfg);
        let tb = explore(&[tgt, ctx], &ps_cfg);
        assert!(!sb.truncated && !tb.truncated, "{}: truncated", bug.name);
        assert!(
            ps_behaviors_refine(&tb.behaviors, &sb.behaviors).is_err(),
            "{}: expected a PS^na behavior difference under the witness context\n\
             src behaviors: {:?}\ntgt behaviors: {:?}",
            bug.name,
            sb.behaviors,
            tb.behaviors
        );
        witnessed += 1;
    }
    assert!(witnessed >= 3);
}
