//! Failure injection: deliberately *unsound* "optimizations" must be
//! rejected by SEQ-based translation validation — demonstrating that the
//! validator (the Rust stand-in for the paper's Coq certification) has
//! teeth, and that each of its rejections corresponds to a real
//! weak-memory bug (witnessed under PS^na where feasible).

use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_promising::machine::{explore, ps_behaviors_refine};
use seqwm_promising::thread::PsConfig;
use seqwm_seq::advanced::refines_advanced;
use seqwm_seq::refine::{refines_simple, RefineConfig};

struct BuggyRewrite {
    name: &'static str,
    src: &'static str,
    tgt: &'static str,
    /// A context thread that exposes the bug under PS^na, if the
    /// composition is small enough to explore.
    witness_ctx: Option<&'static str>,
}

fn buggy_rewrites() -> Vec<BuggyRewrite> {
    vec![
        BuggyRewrite {
            name: "slf-across-rel-acq-pair",
            // A buggy SLF that treats the • token like ◦ across an acquire:
            // forwards 1 across a release–acquire pair (Example 2.12).
            // `print(a)` makes the acquire-read value a *defined*
            // observable: in the synchronized schedule (a = 1) the source
            // race-freely must read x = 2, while the buggy target still
            // returns the forwarded 1 — a target-only behavior. (Without
            // the print, the source's racy `undef` returns in *other*
            // schedules would absorb the difference.)
            src: "store[na](x, 1); store[rel](y, 1); a := load[acq](z); print(a); b := load[na](x); return b;",
            tgt: "store[na](x, 1); store[rel](y, 1); a := load[acq](z); print(a); b := 1; return b;",
            witness_ctx: Some(
                "f := load[acq](y); if (f == 1) { store[na](x, 2); store[rel](z, 1); return 9; } return 0;",
            ),
        },
        BuggyRewrite {
            name: "dse-removes-observed-store",
            // A buggy DSE that ignores the release-write publication: it
            // removes a store whose value escapes through the release.
            src: "store[na](x, 1); store[rel](y, 1);",
            tgt: "store[rel](y, 1);",
            witness_ctx: Some(
                "f := load[acq](y); if (f == 1) { d := load[na](x); } else { d := 1; } return d;",
            ),
        },
        BuggyRewrite {
            name: "licm-hoists-store",
            // A buggy LICM that hoists a *store* (not a load) out of a
            // conditional: unused store introduction (Example 2.10-ish).
            src: "a := load[rlx](y); if (a == 1) { store[na](x, 5); } return a;",
            tgt: "store[na](x, 5); a := load[rlx](y); return a;",
            witness_ctx: None, // refuted in SEQ; PS^na witness needs write-write race timing
        },
        BuggyRewrite {
            name: "reorder-acquire-down",
            // A buggy scheduler that sinks an acquire below a non-atomic
            // write (Example 2.9 (i)).
            // Witness: a context that reads x *before* releasing y. When
            // the source acquires y = 1, the context's read demonstrably
            // happened first and must have returned 0; the buggy target's
            // early write lets the context read 1 in that same schedule —
            // the tuple (a = 1, d = 1) is target-only.
            src: "a := load[acq](y); store[na](x, 1); return a;",
            tgt: "store[na](x, 1); a := load[acq](y); return a;",
            witness_ctx: Some(
                "d := load[na](x); store[rel](y, 1); return d;",
            ),
        },
    ]
}

#[test]
fn validator_rejects_every_injected_bug() {
    let cfg = RefineConfig::default();
    for bug in buggy_rewrites() {
        let src = parse_program(bug.src).unwrap();
        let tgt = parse_program(bug.tgt).unwrap();
        let simple = refines_simple(&src, &tgt, &cfg).unwrap();
        assert!(
            !simple.holds,
            "{}: the simple checker failed to reject an unsound rewrite",
            bug.name
        );
        let adv = refines_advanced(&src, &tgt, &cfg).unwrap();
        assert!(
            !adv.holds,
            "{}: the advanced checker failed to reject an unsound rewrite",
            bug.name
        );
    }
}

#[test]
fn rejections_correspond_to_real_psna_bugs() {
    // For the bugs with a witness context, the PS^na behavior sets really
    // do differ — SEQ's rejection is not a false positive.
    let ps_cfg = PsConfig::default();
    let mut witnessed = 0;
    for bug in buggy_rewrites() {
        let Some(ctx_src) = bug.witness_ctx else {
            continue;
        };
        let src = parse_program(bug.src).unwrap();
        let tgt = parse_program(bug.tgt).unwrap();
        let ctx: Program = parse_program(ctx_src).unwrap();
        let sb = explore(&[src, ctx.clone()], &ps_cfg);
        let tb = explore(&[tgt, ctx], &ps_cfg);
        assert!(!sb.truncated && !tb.truncated, "{}: truncated", bug.name);
        assert!(
            ps_behaviors_refine(&tb.behaviors, &sb.behaviors).is_err(),
            "{}: expected a PS^na behavior difference under the witness context\n\
             src behaviors: {:?}\ntgt behaviors: {:?}",
            bug.name,
            sb.behaviors,
            tb.behaviors
        );
        witnessed += 1;
    }
    assert!(witnessed >= 3);
}

/// The same teeth-check for the exploration engine's partial-order
/// reduction: a deliberately broken independence rule (planted via
/// [`FaultPlan::unsound_atomic_independence`]) must produce an
/// observable behavior-set difference against an unreduced run — i.e.
/// the differential methodology of `tests/por_soundness.rs` really
/// does catch an unsound rule, it doesn't just vacuously pass.
///
/// The demonstration system is a deliberately *minimal* transition
/// system rather than a `WHILE` program: statement sequencing in the
/// language inserts a silent step after every store, and a silent step
/// is honestly dependent on a sleeping writer, so it wakes the slept
/// agent and dedup reconstructs the "pruned" interleaving — the
/// litmus corpora self-heal around this particular mis-claim. The
/// engine, however, must stay sound for *any* client system, including
/// ones whose conflicting accesses are back-to-back.
#[cfg(feature = "fault-injection")]
mod planted_por_bug {
    use seqwm_explore::{
        explore, fp64, AgentGroup, ExploreConfig, FaultPlan, Transition, TransitionSystem,
    };

    /// Two agents racing on one cell `x`:
    ///
    /// * agent 0 performs a single atomic write `x := 1`;
    /// * agent 1 writes `x := 2` and then *immediately* reads `x`.
    ///
    /// The read value is the behavior. `1` is observable only in the
    /// interleaving `w₁ w₀ r` — exactly the successor a same-location
    /// "independent writes" mis-claim puts to sleep.
    struct RacingWriters;

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct St {
        w0_done: bool,
        pc1: u8,
        x: u8,
        read: u8,
    }

    impl TransitionSystem for RacingWriters {
        type State = St;
        type Behavior = u8;

        fn initial_state(&self) -> St {
            St {
                w0_done: false,
                pc1: 0,
                x: 0,
                read: 0,
            }
        }

        fn agent_groups(&self, st: &St) -> Vec<AgentGroup<St, u8>> {
            let mut out = Vec::new();
            if !st.w0_done {
                out.push(AgentGroup {
                    agent: 0,
                    transitions: vec![Transition::state(St {
                        w0_done: true,
                        x: 1,
                        ..st.clone()
                    })],
                    shared_pure: false,
                    local: false,
                    na_write: None,
                    shared_read: None,
                    atomic_write: Some(fp64(&"x")),
                });
            }
            match st.pc1 {
                0 => out.push(AgentGroup {
                    agent: 1,
                    transitions: vec![Transition::state(St {
                        pc1: 1,
                        x: 2,
                        ..st.clone()
                    })],
                    shared_pure: false,
                    local: false,
                    na_write: None,
                    shared_read: None,
                    atomic_write: Some(fp64(&"x")),
                }),
                1 => out.push(AgentGroup {
                    agent: 1,
                    transitions: vec![Transition::state(St {
                        pc1: 2,
                        read: st.x,
                        ..st.clone()
                    })],
                    shared_pure: true,
                    local: false,
                    na_write: None,
                    shared_read: Some(fp64(&"x")),
                    atomic_write: None,
                }),
                _ => {}
            }
            out
        }

        fn terminal_behavior(&self, st: &St) -> Option<u8> {
            (st.w0_done && st.pc1 == 2).then_some(st.read)
        }
    }

    #[test]
    fn differential_suite_catches_unsound_atomic_independence() {
        let unreduced = explore(
            &RacingWriters,
            &ExploreConfig {
                reduction: false,
                ..ExploreConfig::default()
            },
        );
        let clean = explore(&RacingWriters, &ExploreConfig::default());
        // Unreduced, the read observes either writer; the honest
        // reduction keeps both (same-location writes are Dependent).
        assert_eq!(unreduced.behaviors, [1, 2].into());
        assert_eq!(clean.behaviors, unreduced.behaviors);

        let buggy = explore(
            &RacingWriters,
            &ExploreConfig {
                fault: Some(FaultPlan {
                    unsound_atomic_independence: true,
                    ..FaultPlan::default()
                }),
                ..ExploreConfig::default()
            },
        );
        // The planted rule prunes the `w₁ w₀ r` interleaving, losing
        // behavior 1 — a *proper subset*, the shape the soundness
        // battery's equality assertions are built to detect.
        assert_ne!(
            buggy.behaviors, unreduced.behaviors,
            "the planted unsound independence rule went undetected"
        );
        assert!(
            buggy.behaviors.is_subset(&unreduced.behaviors),
            "an unsound reduction can only lose behaviors, not invent them"
        );
    }
}
