//! Chaos and hardening suite for the `seqwm serve` daemon (feature
//! `chaos`): the real binary, real sockets, and a deterministic
//! adversary.
//!
//! Seven legs:
//!
//! 1. **Slow loris** — a client that trickles a frame past
//!    `--read-timeout-ms` is evicted with the structured
//!    `SLOW_CLIENT` error, and the daemon keeps serving.
//! 2. **Oversized frame** — a request line past `--max-frame-bytes`
//!    draws `FRAME_TOO_LARGE`, not an OOM or a hang.
//! 3. **Cap + overload** — connection `--max-conns` rejects at the
//!    door with `TOO_MANY_CONNS`; a saturated queue sheds load with
//!    `OVERLOADED` carrying a `retry_after_ms` hint.
//! 4. **Drain** — `server.shutdown {"drain": true}` finishes the
//!    books: new submissions draw `DRAINING`, the straggler is
//!    canceled at `--drain-timeout-ms`, the queued job survives in
//!    the journal and is recovered by the next daemon.
//! 5. **Fault proxy** — a fixed-seed [`ChaosPlan`] tears, stalls,
//!    garbles, and severs frames; every per-connection expectation is
//!    computed from the plan, and the daemon survives all of it.
//! 6. **Corrupt state** — journal and cache files damaged with every
//!    [`FileChaos`] mode are quarantined on restart (visible in
//!    `server.stats`), never a crash.
//! 7. **Soak** (`--ignored`) — concurrent clients hammer the daemon
//!    through the proxy; the gate is zero daemon crashes.
//! 8. **Write errors** — [`FileChaos::DenyWrites`] turns journal and
//!    cache paths into directories so every later write or rename
//!    fails persistently; the writers skip (journal/cache persistence
//!    is best-effort) and the next start quarantines the unreadable
//!    paths, never a crash.
//!
//! Every schedule is a pure function of a fixed seed, so a failure
//! here replays identically on any machine.

#![cfg(feature = "chaos")]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use promising_seq::json::Json;
use promising_seq::serve::{corrupt_file, ChaosAction, ChaosPlan, ChaosProxy, FileChaos};

const BIN: &str = env!("CARGO_BIN_EXE_seqwm");

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("seqwm-serve-chaos-{tag}-{}", std::process::id()))
}

/// A daemon child process plus the address it reported on stdout.
struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_daemon(state_dir: &PathBuf, extra: &[&str]) -> Daemon {
    let mut child = Command::new(BIN)
        .arg("serve")
        .arg("--state-dir")
        .arg(state_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("startup line");
    let addr = line
        .trim()
        .strip_prefix("seqwm-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    Daemon {
        child,
        addr,
        stdout,
    }
}

impl Daemon {
    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    fn sock_addr(&self) -> SocketAddr {
        self.addr.parse().expect("daemon address parses")
    }

    /// Asserts the daemon process is still alive (a crash shows up as
    /// an early exit status here).
    fn assert_alive(&mut self) {
        assert!(
            self.child.try_wait().expect("try_wait").is_none(),
            "daemon crashed"
        );
    }
}

/// Minimal blocking JSON-RPC client over any addr (daemon or proxy).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            next_id: 1,
        }
    }

    fn request_line(&mut self, method: &str, params: Json) -> String {
        let id = self.next_id;
        self.next_id += 1;
        Json::obj(vec![
            ("jsonrpc", Json::str("2.0")),
            ("id", Json::num(id)),
            ("method", Json::str(method)),
            ("params", params),
        ])
        .to_string()
    }

    /// Sends one request; returns its response, skipping notifications
    /// and null-id error lines (parse errors for injected garbage).
    fn call(&mut self, method: &str, params: Json) -> Json {
        let line = self.request_line(method, params);
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
        loop {
            let mut reply = String::new();
            self.reader.read_line(&mut reply).expect("read reply");
            assert!(!reply.is_empty(), "daemon closed the connection");
            let doc = Json::parse(reply.trim()).expect("reply parses");
            match doc.get("id") {
                Some(Json::Null) | None => {} // garbage's parse error / notification
                Some(_) => return doc,
            }
        }
    }

    /// Like [`call`](Self::call) but tolerant of a severed connection:
    /// returns `None` on any I/O failure or EOF instead of panicking.
    fn try_call(&mut self, method: &str, params: Json) -> Option<Json> {
        let line = self.request_line(method, params);
        self.writer.write_all(line.as_bytes()).ok()?;
        self.writer.write_all(b"\n").ok()?;
        self.writer.flush().ok()?;
        loop {
            let mut reply = String::new();
            self.reader.read_line(&mut reply).ok()?;
            if reply.is_empty() {
                return None;
            }
            let doc = Json::parse(reply.trim()).ok()?;
            match doc.get("id") {
                Some(Json::Null) | None => {}
                Some(_) => return Some(doc),
            }
        }
    }
}

fn result_of(doc: &Json) -> &Json {
    doc.get("result")
        .unwrap_or_else(|| panic!("expected result, got {doc}"))
}

fn error_code(doc: &Json) -> i64 {
    let e = doc
        .get("error")
        .unwrap_or_else(|| panic!("expected error, got {doc}"));
    match e.get("code").expect("error has code") {
        Json::Num(n) => *n as i64,
        other => panic!("non-numeric code {other}"),
    }
}

fn refine_params(src: &str, tgt: &str) -> Json {
    Json::obj(vec![("src", Json::str(src)), ("tgt", Json::str(tgt))])
}

/// A fuzz submission big enough to still be running when we act.
fn long_fuzz(seed: u64) -> Json {
    Json::obj(vec![
        ("kind", Json::str("fuzz")),
        ("cases", Json::num(2_000_000)),
        ("seed", Json::num(seed)),
    ])
}

fn job_id(doc: &Json) -> u64 {
    result_of(doc)
        .get("job")
        .expect("job id")
        .as_u64("job")
        .expect("u64")
}

fn wait_for_running(c: &mut Client, id: u64) {
    let t0 = Instant::now();
    loop {
        let doc = c.call("job.status", Json::obj(vec![("job", Json::num(id))]));
        let state = result_of(&doc).get("state").expect("state");
        if state == &Json::str("running") {
            return;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "job {id} never started: {state}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// Leg 1: slow loris.
// ---------------------------------------------------------------------

#[test]
fn slow_loris_clients_are_evicted_with_a_structured_error() {
    let dir = tmp_dir("loris");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--read-timeout-ms", "250"]);

    // Half a frame, then silence: the deadline must fire even though
    // bytes did arrive (the clock covers the whole frame, not a gap).
    let mut s = TcpStream::connect(&daemon.addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    s.write_all(br#"{"jsonrpc":"2.0","id":1,"met"#)
        .expect("partial frame");
    s.flush().expect("flush");
    let mut reader = BufReader::new(s);
    let mut line = String::new();
    reader.read_line(&mut line).expect("error line");
    let doc = Json::parse(line.trim()).expect("error line parses");
    assert_eq!(error_code(&doc), -32006, "SLOW_CLIENT: {doc}");
    // Then EOF: the connection is gone, not wedged.
    line.clear();
    reader.read_line(&mut line).expect("read after eviction");
    assert!(line.is_empty(), "expected EOF after eviction, got {line:?}");

    // The daemon is unharmed: a prompt client round-trips.
    let mut c = daemon.connect();
    let doc = c.call("refine.check", refine_params("return 1;", "return 1;"));
    assert!(doc.get("result").is_some(), "healthy after eviction: {doc}");
    daemon.assert_alive();

    c.call("server.shutdown", Json::obj(vec![]));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "clean exit, got {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 2: oversized frame.
// ---------------------------------------------------------------------

#[test]
fn oversized_frames_draw_frame_too_large_not_an_oom() {
    let dir = tmp_dir("frame");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--max-frame-bytes", "512"]);

    let mut s = TcpStream::connect(&daemon.addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    // 4 KiB without a newline. The daemon may close mid-send, so the
    // writes are tolerant (EPIPE here is the defense working).
    let huge = format!(
        r#"{{"jsonrpc":"2.0","id":1,"method":"server.stats","params":{{"pad":"{}"}}}}"#,
        "x".repeat(4096)
    );
    let _ = s.write_all(huge.as_bytes());
    let _ = s.write_all(b"\n");
    let _ = s.flush();
    let mut reader = BufReader::new(s);
    let mut line = String::new();
    reader.read_line(&mut line).expect("error line");
    let doc = Json::parse(line.trim()).expect("error line parses");
    assert_eq!(error_code(&doc), -32005, "FRAME_TOO_LARGE: {doc}");

    let mut c = daemon.connect();
    let doc = c.call("server.stats", Json::obj(vec![]));
    assert!(doc.get("result").is_some(), "healthy after rejection");
    daemon.assert_alive();

    c.call("server.shutdown", Json::obj(vec![]));
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 3: connection cap + admission control.
// ---------------------------------------------------------------------

#[test]
fn connection_cap_and_saturated_queue_shed_load_with_hints() {
    let dir = tmp_dir("overload");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(
        &dir,
        &["--max-conns", "1", "--workers", "1", "--queue-depth", "1"],
    );
    let mut c1 = daemon.connect();

    // The second connection is rejected at the door with a structured
    // error, while the first is untouched.
    let s2 = TcpStream::connect(&daemon.addr).expect("second connect");
    s2.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut r2 = BufReader::new(s2);
    let mut line = String::new();
    r2.read_line(&mut line).expect("rejection line");
    let doc = Json::parse(line.trim()).expect("rejection parses");
    assert_eq!(error_code(&doc), -32007, "TOO_MANY_CONNS: {doc}");
    drop(r2);

    // Saturate: one running, one queued, the third is shed with a
    // retry hint derived from queue depth and recent latency.
    let a = job_id(&c1.call("job.submit", long_fuzz(11)));
    wait_for_running(&mut c1, a);
    let b = job_id(&c1.call("job.submit", long_fuzz(12)));
    let doc = c1.call("job.submit", long_fuzz(13));
    assert_eq!(error_code(&doc), -32002, "OVERLOADED: {doc}");
    let data = doc
        .get("error")
        .expect("error")
        .get("data")
        .expect("structured data");
    let retry = data
        .get("retry_after_ms")
        .expect("retry_after_ms")
        .as_u64("retry_after_ms")
        .expect("u64");
    assert!(retry >= 10, "retry hint must be actionable, got {retry}");
    assert_eq!(
        data.get("queue_capacity").expect("capacity"),
        &Json::num(1),
        "hint carries the capacity: {data}"
    );

    for id in [a, b] {
        c1.call("job.cancel", Json::obj(vec![("job", Json::num(id))]));
    }
    daemon.assert_alive();
    c1.call("server.shutdown", Json::obj(vec![]));
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 4: graceful drain.
// ---------------------------------------------------------------------

/// Reads a CRC-enveloped journal record and returns its payload state.
fn journal_state(dir: &std::path::Path, id: u64) -> String {
    let path = dir.join("jobs").join(format!("job-{id}.json"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let doc = Json::parse(text.trim()).expect("journal record parses");
    doc.get("payload")
        .expect("envelope payload")
        .get("state")
        .expect("job state")
        .as_str("state")
        .expect("string state")
        .to_string()
}

#[test]
fn drain_shutdown_journals_the_queue_and_cancels_stragglers() {
    let dir = tmp_dir("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--workers", "1", "--drain-timeout-ms", "400"]);
    let mut c = daemon.connect();

    let a = job_id(&c.call("job.submit", long_fuzz(21)));
    wait_for_running(&mut c, a);
    let b = job_id(&c.call("job.submit", long_fuzz(22)));

    // Drain: the reply reports the books as of the drain decision.
    let doc = c.call(
        "server.shutdown",
        Json::obj(vec![("drain", Json::Bool(true))]),
    );
    let r = result_of(&doc);
    assert_eq!(r.get("drain").expect("drain"), &Json::Bool(true));
    assert_eq!(r.get("running").expect("running"), &Json::num(1));
    assert_eq!(r.get("queued").expect("queued"), &Json::num(1));

    // New work is refused while draining.
    let mut c2 = daemon.connect();
    let doc = c2.call("job.submit", long_fuzz(23));
    assert_eq!(error_code(&doc), -32008, "DRAINING: {doc}");

    // The straggler is canceled at the drain deadline and the daemon
    // exits cleanly on its own.
    let status = daemon.child.wait().expect("daemon exits after drain");
    assert!(status.success(), "drain exit, got {status:?}");
    assert_eq!(journal_state(&dir, a), "canceled", "straggler canceled");
    assert_eq!(journal_state(&dir, b), "queued", "queued job preserved");

    // The next daemon picks the queued job back up.
    let mut daemon = spawn_daemon(&dir, &["--workers", "1"]);
    let mut line = String::new();
    daemon.stdout.read_line(&mut line).expect("recovery line");
    assert!(
        line.contains("recovered 1 interrupted job"),
        "unexpected recovery line: {line:?}"
    );
    let mut c = daemon.connect();
    c.call("job.cancel", Json::obj(vec![("job", Json::num(b))]));
    c.call("server.shutdown", Json::obj(vec![]));
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 5: the deterministic fault proxy.
// ---------------------------------------------------------------------

#[test]
fn fault_proxy_gauntlet_matches_the_plan_and_never_kills_the_daemon() {
    let dir = tmp_dir("proxy");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--workers", "2"]);
    let plan = ChaosPlan {
        seed: 0xC0FFEE,
        tear_per_mille: 200,
        disconnect_per_mille: 150,
        garbage_per_mille: 150,
        stall_per_mille: 150,
        stall: Duration::from_millis(10),
    };
    let proxy = ChaosProxy::start(daemon.sock_addr(), plan.clone()).expect("proxy starts");
    let proxy_addr = proxy.addr().to_string();

    // One request per connection, connections strictly sequential, so
    // connection i sees exactly plan.action(i, 0) on its only frame —
    // the expectation is computed, not guessed.
    let mut seen = [0usize; 5];
    for conn in 0..24u64 {
        let action = plan.action(conn, 0);
        seen[action as usize] += 1;
        let mut c = Client::connect(&proxy_addr);
        let params = refine_params(&format!("return {conn};"), &format!("return {conn};"));
        match (action, c.try_call("refine.check", params)) {
            (ChaosAction::Disconnect, reply) => {
                assert!(
                    reply.is_none(),
                    "conn {conn}: a severed request must not produce a reply"
                );
            }
            (_, Some(doc)) => {
                let verdict = result_of(&doc)
                    .get("result")
                    .expect("payload")
                    .get("verdict")
                    .expect("verdict");
                assert_eq!(verdict, &Json::str("holds"), "conn {conn} ({action:?})");
            }
            (_, None) => panic!("conn {conn}: {action:?} must still get an answer"),
        }
        // Drop the client before the next connection so proxy
        // connection indices stay sequential.
    }
    // The fixed seed exercises every failure mode at least once.
    for (i, label) in ["pass", "tear", "disconnect", "stall", "garbage"]
        .iter()
        .enumerate()
    {
        assert!(seen[i] > 0, "seed must exercise {label}: {seen:?}");
    }

    proxy.stop();
    daemon.assert_alive();
    let mut c = daemon.connect();
    let doc = c.call("server.stats", Json::obj(vec![]));
    assert!(doc.get("result").is_some(), "daemon healthy after gauntlet");
    c.call("server.shutdown", Json::obj(vec![]));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(
        status.success(),
        "clean exit after gauntlet, got {status:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 6: corrupt durable state.
// ---------------------------------------------------------------------

#[test]
fn corrupt_journal_and_cache_files_are_quarantined_on_restart() {
    let dir = tmp_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &[]);
    let mut c = daemon.connect();
    for i in 0..3 {
        let p = refine_params(&format!("r := {i}; return r;"), &format!("return {i};"));
        let doc = c.call("refine.check", p);
        assert!(doc.get("result").is_some(), "seed job {i}: {doc}");
    }
    c.call("server.shutdown", Json::obj(vec![]));
    let _ = daemon.child.wait();

    // Damage two journal records and two cache entries, one per
    // corruption class.
    corrupt_file(&dir.join("jobs").join("job-1.json"), FileChaos::Truncate)
        .expect("truncate journal");
    corrupt_file(&dir.join("jobs").join("job-2.json"), FileChaos::Empty).expect("empty journal");
    let mut cache_files: Vec<PathBuf> = std::fs::read_dir(dir.join("cache"))
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    cache_files.sort();
    assert_eq!(cache_files.len(), 3, "three cached verdicts");
    corrupt_file(&cache_files[0], FileChaos::FlipByte).expect("flip cache byte");
    corrupt_file(&cache_files[1], FileChaos::Garbage).expect("garbage cache");

    // Restart: every damaged record is quarantined, counted, and the
    // daemon serves as if nothing happened.
    let mut daemon = spawn_daemon(&dir, &[]);
    let mut c = daemon.connect();
    let stats = c.call("server.stats", Json::obj(vec![]));
    let q = result_of(&stats).get("quarantine").expect("quarantine");
    assert_eq!(q.get("journal").expect("journal"), &Json::num(2), "{q}");
    assert_eq!(q.get("cache").expect("cache"), &Json::num(2), "{q}");
    let entries = result_of(&stats)
        .get("cache")
        .expect("cache stats")
        .get("entries")
        .expect("entries");
    assert_eq!(entries, &Json::num(1), "one cache survivor");
    let kept = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(kept, 4, "all four corpses kept for forensics");

    // Still a working daemon: fresh jobs verify, old ones were not
    // silently resurrected from corrupt records.
    let doc = c.call("refine.check", refine_params("return 9;", "return 9;"));
    assert!(doc.get("result").is_some(), "healthy after quarantine");
    daemon.assert_alive();
    c.call("server.shutdown", Json::obj(vec![]));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "clean exit, got {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 8: persistent write errors (DenyWrites).
// ---------------------------------------------------------------------

#[test]
fn deny_writes_chaos_skips_journal_and_cache_writers() {
    let dir = tmp_dir("deny");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--workers", "1"]);
    let mut c = daemon.connect();

    // A running job whose journal path turns into a directory: every
    // later persist (state transitions, finalize) fails persistently.
    // Journal persistence is best-effort, so the daemon must skip the
    // failed writes and keep the in-memory books correct.
    let a = job_id(&c.call("job.submit", long_fuzz(31)));
    wait_for_running(&mut c, a);
    corrupt_file(
        &dir.join("jobs").join(format!("job-{a}.json")),
        FileChaos::DenyWrites,
    )
    .expect("deny journal writes");
    c.call("job.cancel", Json::obj(vec![("job", Json::num(a))]));
    let t0 = Instant::now();
    loop {
        let doc = c.call("job.status", Json::obj(vec![("job", Json::num(a))]));
        if result_of(&doc).get("state").expect("state") == &Json::str("canceled") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "job {a} never finalized under denied journal writes"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.assert_alive();

    // A refine completes and caches even though its journal may race
    // the same fate; its cache entry is the next victim.
    let doc = c.call("refine.check", refine_params("return 3;", "return 3;"));
    assert!(doc.get("result").is_some(), "refine under chaos: {doc}");
    c.call("server.shutdown", Json::obj(vec![]));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "clean exit, got {status:?}");

    let cache_files: Vec<PathBuf> = std::fs::read_dir(dir.join("cache"))
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(cache_files.len(), 1, "one cached verdict");
    corrupt_file(&cache_files[0], FileChaos::DenyWrites).expect("deny cache writes");

    // Restart: the unreadable journal and cache paths (directories
    // now) are quarantined or skipped, and the daemon serves normally.
    let mut daemon = spawn_daemon(&dir, &[]);
    let mut c = daemon.connect();
    let stats = c.call("server.stats", Json::obj(vec![]));
    let q = result_of(&stats).get("quarantine").expect("quarantine");
    let journal_q = q.get("journal").expect("journal").as_u64("journal");
    let cache_q = q.get("cache").expect("cache").as_u64("cache");
    assert!(
        journal_q.is_ok_and(|n| n >= 1) || cache_q.is_ok_and(|n| n >= 1),
        "denied paths must be quarantined on restart: {q}"
    );
    let doc = c.call("refine.check", refine_params("return 4;", "return 4;"));
    assert!(doc.get("result").is_some(), "healthy after deny-writes");
    daemon.assert_alive();
    c.call("server.shutdown", Json::obj(vec![]));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "clean exit after deny-writes: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 7: fixed-seed soak (opt-in via --ignored; CI runs it gated on
// zero daemon crashes).
// ---------------------------------------------------------------------

#[test]
#[ignore = "soak leg: run explicitly (cargo test --features chaos -- --ignored)"]
fn chaos_soak_fixed_seed_never_crashes_the_daemon() {
    let dir = tmp_dir("soak");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--workers", "2"]);
    let plan = ChaosPlan {
        seed: 0x50AC,
        tear_per_mille: 120,
        disconnect_per_mille: 100,
        garbage_per_mille: 100,
        stall_per_mille: 100,
        stall: Duration::from_millis(5),
    };
    let proxy = ChaosProxy::start(daemon.sock_addr(), plan).expect("proxy starts");
    let proxy_addr = proxy.addr().to_string();

    // Four clients, 25 requests each, every request a fresh proxied
    // connection. Interleaving varies, but each connection's fate is
    // still a pure function of (seed, its connection index).
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let addr = proxy_addr.clone();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for i in 0..25 {
                    let mut c = Client::connect(&addr);
                    let p = refine_params(
                        &format!("r := {t} + {i}; return r;"),
                        &format!("return {t} + {i};"),
                    );
                    if let Some(doc) = c.try_call("refine.check", p) {
                        if doc.get("result").is_some() {
                            ok += 1;
                        }
                    }
                }
                ok
            })
        })
        .collect();
    let ok: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    assert!(ok > 0, "some requests must get through the chaos");

    proxy.stop();
    // The only gate that matters: the daemon survived everything.
    daemon.assert_alive();
    let mut c = daemon.connect();
    let doc = c.call("server.stats", Json::obj(vec![]));
    assert!(doc.get("result").is_some(), "daemon healthy after soak");
    c.call("server.shutdown", Json::obj(vec![]));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "zero-crash gate, got {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
