//! Fault-tolerance integration tests: checkpoint/resume over the real
//! litmus corpus, corrupt-checkpoint fallback, structured
//! misconfiguration errors through the adapter crates, and the CLI's
//! per-class exit codes.
//!
//! The engine-internal failure paths (panic isolation, retry,
//! degradation ladder) are unit-tested inside `seqwm-explore`; this
//! suite checks that durability composes with the PS^na and SEQ
//! adapters end to end — a run interrupted by a state budget and
//! resumed from disk must converge on exactly the behavior set of an
//! uninterrupted run.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use seqwm_explore::{
    CheckpointSpec, ExploreConfig, ExploreError, ExploreWarning, StopReason, Strategy,
};
use seqwm_litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use seqwm_promising::machine::PsBehavior;
use seqwm_promising::search::{engine_config, explore_engine, try_explore_engine};

/// A collision-free temp path for a checkpoint file.
fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("seqwm-itest-{}-{tag}-{n}.ckpt", std::process::id()))
}

fn cheap_cases() -> Vec<ConcurrentCase> {
    concurrent_corpus()
        .into_iter()
        .filter(|c| !c.promises)
        .collect()
}

fn baseline(case: &ConcurrentCase) -> BTreeSet<PsBehavior> {
    let cfg = case.config();
    let e = explore_engine(&case.programs(), &cfg, &engine_config(&cfg));
    assert!(!e.stats.truncated, "{}: baseline truncated", case.name);
    e.behaviors
}

/// Repeatedly interrupt a corpus exploration with a tiny state budget,
/// checkpointing on every stop and resuming from the file, until the
/// run completes. The final behavior set must equal the uninterrupted
/// baseline — no behavior lost, none invented, across any number of
/// interruptions.
#[test]
fn interrupted_corpus_runs_converge_on_the_baseline() {
    let mut interrupted = 0usize;
    for case in cheap_cases() {
        let expect = baseline(&case);
        let cfg = case.config();
        let path = temp_path(case.name);
        let mut legs = 0usize;
        let behaviors = loop {
            let ecfg = ExploreConfig {
                max_states: 40,
                checkpoint: Some(CheckpointSpec::new(&path)),
                resume: (legs > 0).then(|| path.clone()),
                ..engine_config(&cfg)
            };
            let e = try_explore_engine(&case.programs(), &cfg, &ecfg)
                .unwrap_or_else(|err| panic!("{}: leg {legs}: {err}", case.name));
            legs += 1;
            assert!(legs <= 512, "{}: did not converge", case.name);
            if legs > 1 {
                assert!(e.stats.resumed, "{}: leg {legs} did not resume", case.name);
            }
            match e.stats.stop {
                StopReason::Completed => break e.behaviors,
                StopReason::StateBudget => continue,
                other => panic!("{}: unexpected stop {other:?}", case.name),
            }
        };
        interrupted += (legs > 1) as usize;
        assert_eq!(behaviors, expect, "{}: after {legs} legs", case.name);
        let _ = std::fs::remove_file(&path);
    }
    assert!(interrupted > 3, "budget barely ever tripped: {interrupted}");
}

/// A corrupt or truncated checkpoint must not poison the run: the
/// engine warns, starts fresh, and still produces the exact baseline.
#[test]
fn corrupt_checkpoint_falls_back_to_a_fresh_run() {
    let case = &cheap_cases()[0];
    let expect = baseline(case);
    let cfg = case.config();
    for garbage in [&b""[..], b"SQWM", b"not a checkpoint at all"] {
        let path = temp_path("corrupt");
        std::fs::write(&path, garbage).unwrap();
        let e = try_explore_engine(
            &case.programs(),
            &cfg,
            &ExploreConfig {
                resume: Some(path.clone()),
                ..engine_config(&cfg)
            },
        )
        .unwrap();
        assert!(
            e.stats
                .warnings
                .iter()
                .any(|w| matches!(w, ExploreWarning::ResumeCorrupt { .. })),
            "no corruption warning for {garbage:?}: {:?}",
            e.stats.warnings
        );
        assert!(!e.stats.resumed);
        assert_eq!(e.behaviors, expect);
        let _ = std::fs::remove_file(&path);
    }
}

/// A checkpoint from one program must be rejected when resumed under a
/// different program (the initial-state digest differs), again falling
/// back to a fresh, correct run.
#[test]
fn checkpoint_of_another_program_is_rejected() {
    let cases = cheap_cases();
    let (a, b) = (&cases[0], &cases[1]);
    let path = temp_path("xsys");
    let cfg_a = a.config();
    try_explore_engine(
        &a.programs(),
        &cfg_a,
        &ExploreConfig {
            checkpoint: Some(CheckpointSpec::new(&path)),
            ..engine_config(&cfg_a)
        },
    )
    .unwrap();
    let cfg_b = b.config();
    let e = try_explore_engine(
        &b.programs(),
        &cfg_b,
        &ExploreConfig {
            resume: Some(path.clone()),
            ..engine_config(&cfg_b)
        },
    )
    .unwrap();
    assert!(e
        .stats
        .warnings
        .iter()
        .any(|w| matches!(w, ExploreWarning::ResumeCorrupt { .. })));
    assert_eq!(e.behaviors, baseline(b));
    let _ = std::fs::remove_file(&path);
}

/// Durability under a strategy that keeps no frontier is a structured
/// error from the fallible adapters, not a panic or a silent no-op.
#[test]
fn durable_misconfiguration_is_a_structured_error() {
    let case = &cheap_cases()[0];
    let cfg = case.config();
    let err = try_explore_engine(
        &case.programs(),
        &cfg,
        &ExploreConfig {
            strategy: Strategy::RandomWalk { walks: 8, seed: 1 },
            checkpoint: Some(CheckpointSpec::new(temp_path("badstrat"))),
            ..engine_config(&cfg)
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ExploreError::UnsupportedStrategy { .. }),
        "{err}"
    );

    let err = try_explore_engine(
        &case.programs(),
        &cfg,
        &ExploreConfig {
            checkpoint: Some(CheckpointSpec::new("")),
            ..engine_config(&cfg)
        },
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::InvalidConfig { .. }), "{err}");
}

/// The SEQ adapter's fallible entry point: durability round-trips
/// through a SEQ state space too.
#[test]
fn seq_adapter_checkpoints_and_resumes() {
    use seqwm_lang::parser::parse_program;
    use seqwm_lang::Loc;
    use seqwm_seq::machine::{EnumDomain, Memory, SeqState};
    use seqwm_seq::search::{seq_engine_config, try_explore_seq};

    let p =
        parse_program("store[na](ft_x, 1); fence[acq]; a := load[na](ft_x); return a;").unwrap();
    let init = SeqState::new(
        &p,
        [Loc::new("ft_x")].into_iter().collect(),
        Default::default(),
        Memory::new(),
    );
    let mut dom = EnumDomain::for_program(&p);
    dom.max_steps = 32;
    let expect = try_explore_seq(&init, &dom, &seq_engine_config(&dom))
        .unwrap()
        .ends;
    let path = temp_path("seq");
    let save = try_explore_seq(
        &init,
        &dom,
        &ExploreConfig {
            checkpoint: Some(CheckpointSpec::new(&path)),
            ..seq_engine_config(&dom)
        },
    )
    .unwrap();
    assert!(save.stats.checkpoint_saves > 0);
    let resumed = try_explore_seq(
        &init,
        &dom,
        &ExploreConfig {
            resume: Some(path.clone()),
            ..seq_engine_config(&dom)
        },
    )
    .unwrap();
    assert!(resumed.stats.resumed);
    assert_eq!(save.ends, expect);
    assert_eq!(resumed.ends, expect);
    let _ = std::fs::remove_file(&path);
}

/// The CLI's documented exit-code contract: 2 usage, 3 parse, 4 I/O,
/// and 0 for a successful durable explore (checkpoint written, then
/// resumed).
#[test]
fn cli_exit_codes_follow_the_contract() {
    let bin = env!("CARGO_BIN_EXE_seqwm");
    let dir = std::env::temp_dir();

    let out = Command::new(bin).arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown command");

    let out = Command::new(bin)
        .args(["explore", "--strategy", "zigzag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "bad flag value");

    let bad = dir.join(format!("seqwm-itest-{}-bad.wm", std::process::id()));
    std::fs::write(&bad, "this is not a program !!").unwrap();
    let out = Command::new(bin).arg("parse").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "parse error");
    let _ = std::fs::remove_file(&bad);

    let out = Command::new(bin)
        .args(["parse", "/nonexistent/seqwm-no-such-file.wm"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "missing file");

    let prog = dir.join(format!("seqwm-itest-{}-ok.wm", std::process::id()));
    std::fs::write(
        &prog,
        "store[na](cli_x, 1); r := load[na](cli_x); return r;",
    )
    .unwrap();
    let ckpt = temp_path("cli");

    let out = Command::new(bin)
        .args(["explore", "--checkpoint-every-ms", "50", "--checkpoint"])
        .arg(&ckpt)
        .arg(&prog)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists(), "checkpoint file written");

    let out = Command::new(bin)
        .args(["explore", "--stats", "--resume"])
        .arg(&ckpt)
        .arg(&prog)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Durability under random walks: a hard engine-config error, code 5.
    let out = Command::new(bin)
        .args(["explore", "--strategy", "random", "--checkpoint"])
        .arg(&ckpt)
        .arg(&prog)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&prog);
    let _ = std::fs::remove_file(&ckpt);
}
