//! Smoke tests for the `seqwm-bench` subsystem and the `seqwm bench`
//! CLI: schema stability, run-to-run determinism of counters and
//! metadata, the `--compare` regression gate (both the library entry
//! point and the exit-code contract of the binary), and the parametric
//! scaling families.
//!
//! The perf counters sampled by the suite are process-global, so every
//! in-process `run_suite` call goes through [`suite_lock`] — two suites
//! measuring concurrently would see each other's counter traffic.

use std::process::Command;
use std::sync::{Mutex, MutexGuard, OnceLock};

use promising_seq::bench::report::{compare, BenchReport, BenchResult, CompareConfig, SCHEMA};
use promising_seq::bench::suite::{list_suite, run_suite, SuiteConfig};
use promising_seq::bench::Timing;
use promising_seq::litmus::scaling::mp_chain;
use promising_seq::promising::search::engine_config;

fn suite_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .expect("bench suite lock poisoned")
}

/// A scratch directory unique to this test process, cleaned up by the
/// caller.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seqwm-bench-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A hand-built report with two benches at the given medians — lets the
/// gate tests run without measuring anything.
fn synthetic_report(medians_ns: &[(&str, &str, u64)]) -> BenchReport {
    let mut report = BenchReport::new();
    for &(group, name, median_ns) in medians_ns {
        report.results.push(BenchResult {
            group: group.into(),
            name: name.into(),
            iters: 3,
            warmup: 1,
            timing: Timing {
                median_ns,
                mad_ns: median_ns / 100,
                mean_ns: median_ns,
                min_ns: median_ns,
                max_ns: median_ns,
                rejected: 0,
            },
            samples_ns: vec![median_ns; 3],
            counters: vec![("states".into(), 10)],
            meta: vec![("workers".into(), 1)],
        });
    }
    report
}

#[test]
fn quick_suite_report_is_schema_versioned_and_roundtrips() {
    let _guard = suite_lock();
    let report = run_suite(&SuiteConfig {
        quick: true,
        filter: Some("optimize/".into()),
        iters: 2,
        warmup: 0,
        ..SuiteConfig::default()
    });
    assert_eq!(report.schema, SCHEMA);
    assert_eq!(
        report.schema, "seqwm-bench/1",
        "schema identifier is pinned"
    );
    assert_eq!(report.env.debug_assertions, cfg!(debug_assertions));
    assert!(!report.results.is_empty());
    for r in &report.results {
        assert_eq!(r.group, "optimize");
        assert_eq!(r.samples_ns.len(), 2);
        assert_eq!(r.timing, Timing::of(&r.samples_ns));
    }
    let parsed = BenchReport::from_json(&report.to_json()).expect("report round-trips");
    assert_eq!(parsed, report);
}

#[test]
fn suite_counters_and_meta_are_deterministic_across_runs() {
    let _guard = suite_lock();
    let cfg = SuiteConfig {
        quick: true,
        filter: Some("refine/".into()),
        iters: 1,
        warmup: 0,
        ..SuiteConfig::default()
    };
    let first = run_suite(&cfg);
    let second = run_suite(&cfg);
    let ids = |r: &BenchReport| r.results.iter().map(BenchResult::id).collect::<Vec<_>>();
    assert_eq!(ids(&first), ids(&second), "bench set must be stable");
    assert!(!first.results.is_empty());
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a.counters, b.counters, "{}: counters drifted", a.id());
        assert_eq!(a.meta, b.meta, "{}: metadata drifted", a.id());
        assert!(
            a.counters
                .iter()
                .any(|(k, v)| k == "refine_fuel_spent" && *v > 0),
            "{}: refinement ran but spent no fuel: {:?}",
            a.id(),
            a.counters
        );
    }
}

#[test]
fn compare_passes_identical_reports_and_fails_slowed_ones() {
    let base = synthetic_report(&[
        ("explore", "sb-rlx", 4_000_000),
        ("optimize", "pipeline-loopy-20", 50_000_000),
    ]);
    let cfg = CompareConfig::default();

    let same = compare(&base, &base, &cfg);
    assert!(same.passed());
    assert!(same.regressions.is_empty() && same.missing.is_empty() && same.added.is_empty());

    // Slow every bench 10× — far past the 25% threshold and the
    // absolute floor.
    let mut slowed = base.clone();
    for r in &mut slowed.results {
        r.timing.median_ns *= 10;
    }
    let regressed = compare(&base, &slowed, &cfg);
    assert!(!regressed.passed());
    assert_eq!(regressed.regressions.len(), 2);
    assert!(regressed.regressions.iter().all(|d| d.pct > 800.0));

    // A microsecond-scale bench doubling stays under the absolute
    // floor: percentage alone must not fail the gate.
    let tiny_base = synthetic_report(&[("explore", "tiny", 1_000)]);
    let tiny_cur = synthetic_report(&[("explore", "tiny", 2_000)]);
    assert!(compare(&tiny_base, &tiny_cur, &cfg).passed());
}

#[test]
fn cli_bench_gate_exit_codes_and_written_report() {
    let dir = scratch_dir("cli");
    let fast = synthetic_report(&[("explore", "sb-rlx", 1_000_000)]);
    let mut slow = fast.clone();
    slow.results[0].timing.median_ns = 10_000_000;
    let fast_path = dir.join("fast.json");
    let slow_path = dir.join("slow.json");
    std::fs::write(&fast_path, fast.to_json()).expect("write baseline");
    std::fs::write(&slow_path, slow.to_json()).expect("write current");

    // Identical reports: the gate passes with exit 0.
    let ok = Command::new(env!("CARGO_BIN_EXE_seqwm"))
        .args(["bench", "--compare"])
        .arg(&fast_path)
        .arg("--current")
        .arg(&fast_path)
        .output()
        .expect("run seqwm bench --compare");
    assert!(ok.status.success(), "identical compare failed: {ok:?}");

    // A 10× slowdown past threshold and floor: exit code 9 (Bench).
    let bad = Command::new(env!("CARGO_BIN_EXE_seqwm"))
        .args(["bench", "--compare"])
        .arg(&fast_path)
        .arg("--current")
        .arg(&slow_path)
        .args(["--min-delta-us", "10"])
        .output()
        .expect("run seqwm bench --compare (regressed)");
    assert_eq!(
        bad.status.code(),
        Some(9),
        "regression must exit 9: {bad:?}"
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("REGRESSED"),
        "no REGRESSED line in {stdout}"
    );

    // An unreadable report is also the Bench error class.
    let junk_path = dir.join("junk.json");
    std::fs::write(&junk_path, "{\"schema\":\"other/9\"}").expect("write junk");
    let junk = Command::new(env!("CARGO_BIN_EXE_seqwm"))
        .args(["bench", "--compare"])
        .arg(&junk_path)
        .arg("--current")
        .arg(&fast_path)
        .output()
        .expect("run seqwm bench --compare (junk baseline)");
    assert_eq!(
        junk.status.code(),
        Some(9),
        "bad schema must exit 9: {junk:?}"
    );

    // End to end: run a tiny filtered suite through the binary and
    // parse the file it writes.
    let run = Command::new(env!("CARGO_BIN_EXE_seqwm"))
        .args([
            "bench",
            "--quick",
            "--filter",
            "optimize/pipeline-loopy",
            "--iters",
            "1",
            "--warmup",
            "0",
            "--name",
            "smoke",
            "--out",
        ])
        .arg(&dir)
        .output()
        .expect("run seqwm bench");
    assert!(run.status.success(), "bench run failed: {run:?}");
    let written = std::fs::read_to_string(dir.join("BENCH_smoke.json")).expect("report written");
    let parsed = BenchReport::from_json(&written).expect("written report parses");
    assert_eq!(parsed.schema, SCHEMA);
    assert!(parsed
        .results
        .iter()
        .all(|r| r.id().contains("pipeline-loopy")));
    assert!(!parsed.results.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scaling_families_grow_with_n_and_appear_in_the_suite() {
    // The suite registers the parametric families at multiple worker
    // counts (list only — running the full suite here would be slow).
    let ids = list_suite(&SuiteConfig::default());
    for id in [
        "scaling/mp-chain-3/w1",
        "scaling/mp-chain-3/w8",
        "scaling/mp-chain-4/w2",
        "scaling/sb-ring-3",
        "scaling/sb-ring-3/spill",
        "scaling/na-disjoint-3/full",
        "scaling/na-disjoint-3/reduced",
    ] {
        assert!(ids.iter().any(|i| i == id), "{id} missing from {ids:?}");
    }

    // And the families really scale: state counts grow with N.
    let small = mp_chain(2);
    let big = mp_chain(3);
    let e_small = small.explore(&engine_config(&small.config()));
    let e_big = big.explore(&engine_config(&big.config()));
    assert!(
        e_big.stats.states > e_small.stats.states,
        "mp-chain states must grow with N ({} vs {})",
        e_small.stats.states,
        e_big.stats.states
    );
}
