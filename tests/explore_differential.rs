//! Differential test of the `seqwm-explore` engine against the seed
//! depth-first explorer (`explore_legacy`): the two must produce exactly
//! the same behavior sets (and racy flag) over the whole concurrent
//! litmus corpus, for every combination of worker count and interleaving
//! reduction.
//!
//! The legacy baseline for each case is computed once and shared across
//! tests. The full worker × reduction matrix runs on the cases that are
//! cheap to explore; the expensive promise-heavy cases are covered by the
//! canonical configuration (and by `tests/concurrent_litmus.rs`, which
//! checks their expected outcomes through the engine).

use std::collections::BTreeSet;
use std::sync::OnceLock;

use seqwm_explore::ExploreConfig;
use seqwm_litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use seqwm_promising::machine::{explore_legacy, PsBehavior};
use seqwm_promising::search::{engine_config, explore_engine};

struct Baseline {
    name: &'static str,
    behaviors: BTreeSet<PsBehavior>,
    racy: bool,
    states: usize,
}

/// Cases cheap enough for the full worker × reduction matrix (everything
/// except the promise-synthesis-heavy paper appendices).
fn is_cheap(c: &ConcurrentCase) -> bool {
    !c.promises
}

fn baselines() -> &'static Vec<(ConcurrentCase, Baseline)> {
    static BASELINES: OnceLock<Vec<(ConcurrentCase, Baseline)>> = OnceLock::new();
    BASELINES.get_or_init(|| {
        concurrent_corpus()
            .into_iter()
            .map(|c| {
                let r = explore_legacy(&c.programs(), &c.config());
                assert!(!r.truncated, "{}: legacy baseline truncated", c.name);
                let b = Baseline {
                    name: c.name,
                    behaviors: r.behaviors,
                    racy: r.racy,
                    states: r.states,
                };
                (c, b)
            })
            .collect()
    })
}

fn check_config(workers: usize, reduction: bool, include_heavy: bool) {
    for (case, base) in baselines() {
        if !include_heavy && !is_cheap(case) {
            continue;
        }
        let cfg = case.config();
        let e = explore_engine(
            &case.programs(),
            &cfg,
            &ExploreConfig {
                workers,
                reduction,
                ..engine_config(&cfg)
            },
        );
        assert!(
            !e.stats.truncated,
            "{}: engine truncated (workers={workers}, reduction={reduction})",
            base.name
        );
        assert_eq!(
            e.behaviors, base.behaviors,
            "{}: behavior sets diverge (workers={workers}, reduction={reduction})",
            base.name
        );
        assert_eq!(
            e.stats.racy_steps > 0,
            base.racy,
            "{}: racy flag diverges (workers={workers}, reduction={reduction})",
            base.name
        );
    }
}

// The canonical configuration covers the FULL corpus, including the
// promise-heavy appendix cases: exact behavior-set equality everywhere.
#[test]
fn full_corpus_sequential_reduced() {
    check_config(1, true, true);
}

// The worker × reduction matrix on the cheap cases.
#[test]
fn matrix_w1_unreduced() {
    check_config(1, false, false);
}

#[test]
fn matrix_w2_reduced() {
    check_config(2, true, false);
}

#[test]
fn matrix_w2_unreduced() {
    check_config(2, false, false);
}

#[test]
fn matrix_w4_reduced() {
    check_config(4, true, false);
}

#[test]
fn matrix_w4_unreduced() {
    check_config(4, false, false);
}

// The 4-thread case: the reduction must preserve the behavior set while
// visiting measurably fewer raw states, including under 4 workers.
#[test]
fn four_thread_case_reduction_saves_states() {
    let (case, base) = baselines()
        .iter()
        .find(|(c, _)| c.name == "mp-chain-4")
        .expect("mp-chain-4 in corpus");
    let cfg = case.config();
    let full = explore_engine(
        &case.programs(),
        &cfg,
        &ExploreConfig {
            reduction: false,
            ..engine_config(&cfg)
        },
    );
    let reduced = explore_engine(&case.programs(), &cfg, &engine_config(&cfg));
    let reduced4 = explore_engine(
        &case.programs(),
        &cfg,
        &ExploreConfig {
            workers: 4,
            ..engine_config(&cfg)
        },
    );
    println!(
        "mp-chain-4: legacy {} states; engine full {} states; reduced {} states; \
         reduced(4 workers) {} states",
        base.states, full.stats.states, reduced.stats.states, reduced4.stats.states
    );
    println!("reduced stats: {}", reduced.stats);
    assert_eq!(full.behaviors, base.behaviors);
    assert_eq!(reduced.behaviors, base.behaviors);
    assert_eq!(reduced4.behaviors, base.behaviors);
    assert!(
        reduced.stats.states < full.stats.states,
        "reduction must visit fewer states: {} vs {}",
        reduced.stats.states,
        full.stats.states
    );
    assert!(reduced.stats.sleep_skips + reduced.stats.ample_commits > 0);
}
