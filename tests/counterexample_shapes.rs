//! The *shapes* of refutations: for the paper's `{̸` examples, the
//! checker's counterexample must match the argument the paper gives —
//! same initial-permission setup, same kind of unmatched behavior.

use seqwm_lang::Loc;
use seqwm_litmus::transform::find_case;
use seqwm_seq::behavior::BehaviorEnd;
use seqwm_seq::refine::{refines_simple, RefineConfig};

fn counterexample(name: &str) -> seqwm_seq::refine::Counterexample {
    let case = find_case(name).unwrap_or_else(|| panic!("unknown case {name}"));
    let out = refines_simple(
        &case.src_program(),
        &case.tgt_program(),
        &RefineConfig::default(),
    )
    .unwrap();
    assert!(!out.holds, "{name} must be refuted");
    out.counterexample.unwrap()
}

#[test]
fn example_2_9_i_refuted_without_permission() {
    // Paper: "starting without permission on y, the target invokes UB".
    let ce = counterexample("acq-read-then-na-write");
    assert!(
        !ce.perm.contains(&Loc::new("y")),
        "the refuting configuration lacks permission on y: {ce}"
    );
    assert!(
        matches!(ce.target_behavior.end, BehaviorEnd::Bottom),
        "the unmatched target behavior is UB: {ce}"
    );
    assert!(
        ce.target_behavior.trace.is_empty(),
        "the target reaches ⊥ before any synchronization: {ce}"
    );
}

#[test]
fn example_2_10_refuted_by_written_set() {
    // Paper: "the target's terminating behavior has x ∈ F, while the
    // source ends with F = ∅" (the release reset). The checker may find
    // the evidence either in the behavior's final written set or recorded
    // on the release label of the trace (both witness the same argument).
    let ce = counterexample("store-intro-after-rel");
    let x = Loc::new("x");
    let in_end = match &ce.target_behavior.end {
        BehaviorEnd::Term { written, .. } | BehaviorEnd::Partial { written } => {
            written.contains(&x)
        }
        BehaviorEnd::Bottom => false,
    };
    let in_release_label = ce
        .target_behavior
        .trace
        .iter()
        .filter_map(|l| l.release_written())
        .any(|f| f.contains(&x));
    assert!(
        in_end || in_release_label,
        "the unmatched behavior records the extra write to x: {ce}"
    );
}

#[test]
fn example_2_7_refuted_by_partial_trace() {
    // Paper: "we must consider behaviors before termination ⟨_, prt(F)⟩".
    let ce = counterexample("write-before-loop-partial-trace");
    assert!(
        matches!(ce.target_behavior.end, BehaviorEnd::Partial { .. })
            || matches!(ce.target_behavior.end, BehaviorEnd::Bottom),
        "the refutation uses a partial behavior: {ce}"
    );
}

#[test]
fn example_2_5_same_loc_refuted_by_final_value() {
    // Paper: with M(x) = 2, the target returns 1 while the source
    // returns 2.
    let ce = counterexample("reorder-na-same-loc");
    assert!(
        ce.perm.contains(&Loc::new("x")),
        "the refutation needs permission on x (non-racy execution): {ce}"
    );
    match &ce.target_behavior.end {
        BehaviorEnd::Term { val, .. } => {
            assert_eq!(
                *val,
                seqwm_lang::Value::Int(1),
                "the target returns the newly stored value: {ce}"
            );
        }
        _ => panic!("expected a terminating counterexample: {ce}"),
    }
}

#[test]
fn example_2_12_refuted_through_acquire_update() {
    // Paper: the refutation threads a regained permission with a fresh
    // value through the acquire transition.
    let ce = counterexample("slf-across-rel-acq-pair");
    assert!(
        ce.target_behavior
            .trace
            .iter()
            .any(|l| matches!(l, seqwm_seq::SeqLabel::AcqRead { .. })),
        "the counterexample trace crosses the acquire: {ce}"
    );
}
