//! Differential fault-injection suite (feature `fault-injection`).
//!
//! Runs the PS^na engine over real litmus-corpus cases while a
//! deterministic [`FaultPlan`] injects failures, and checks that
//! *recovered* faults are invisible: a run whose transient panics are
//! all retried, whose delays merely reorder workers, and whose forced
//! visited-set downgrades stay within the ladder must produce exactly
//! the behavior set of a fault-free run. Permanent faults quarantine
//! states, so their runs may only ever *lose* behaviors — never invent
//! them — and must report every loss as an incident.

#![cfg(feature = "fault-injection")]

use std::collections::BTreeSet;
use std::sync::OnceLock;
use std::time::Duration;

use seqwm_explore::{ExploreConfig, FaultPlan, InjectedFault, StopReason, VisitedMode};
use seqwm_litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use seqwm_promising::machine::PsBehavior;
use seqwm_promising::search::{engine_config, explore_engine};

/// Silences the backtraces of injected panics (and only those): the
/// payload type is checked, so a genuine panic still prints.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<InjectedFault>() {
                prev(info);
            }
        }));
    });
}

fn cheap_cases() -> Vec<ConcurrentCase> {
    concurrent_corpus()
        .into_iter()
        .filter(|c| !c.promises)
        .take(5)
        .collect()
}

fn baseline(case: &ConcurrentCase) -> BTreeSet<PsBehavior> {
    let cfg = case.config();
    let e = explore_engine(&case.programs(), &cfg, &engine_config(&cfg));
    assert!(!e.stats.truncated, "{}: baseline truncated", case.name);
    e.behaviors
}

/// Transient faults at several seeds and rates, sequential and
/// parallel: every injected panic is retried exactly once and the
/// behavior set never moves.
#[test]
fn recovered_transient_faults_are_invisible() {
    quiet_injected_panics();
    let mut total_injected = 0usize;
    for case in cheap_cases() {
        let expect = baseline(&case);
        let cfg = case.config();
        for seed in [1u64, 2, 3] {
            for per_mille in [150u16, 500] {
                for workers in [1usize, 4] {
                    let e = explore_engine(
                        &case.programs(),
                        &cfg,
                        &ExploreConfig {
                            workers,
                            fault: Some(FaultPlan::transient(seed, per_mille)),
                            ..engine_config(&cfg)
                        },
                    );
                    let tag = format!(
                        "{} seed={seed} rate={per_mille}‰ workers={workers}",
                        case.name
                    );
                    assert_eq!(e.behaviors, expect, "{tag}");
                    assert_eq!(e.stats.stop, StopReason::Completed, "{tag}");
                    assert_eq!(e.stats.quarantined, 0, "{tag}");
                    assert_eq!(
                        e.stats.retried, e.stats.incident_count,
                        "{tag}: every fault retried"
                    );
                    total_injected += e.stats.retried;
                }
            }
        }
    }
    assert!(
        total_injected > 0,
        "the sweep never actually injected a fault"
    );
}

/// Injected delays shuffle worker timing but cannot change semantics.
#[test]
fn injected_delays_do_not_change_behaviors() {
    quiet_injected_panics();
    let case = &cheap_cases()[0];
    let expect = baseline(case);
    let cfg = case.config();
    for workers in [1usize, 4] {
        let e = explore_engine(
            &case.programs(),
            &cfg,
            &ExploreConfig {
                workers,
                fault: Some(FaultPlan {
                    seed: 11,
                    delay_per_mille: 400,
                    delay: Duration::from_micros(200),
                    ..FaultPlan::default()
                }),
                ..engine_config(&cfg)
            },
        );
        assert_eq!(e.behaviors, expect, "workers={workers}");
    }
}

/// Forced downgrades walk the whole exact → fp128 → fp64 ladder
/// mid-run; the behavior set must survive every rung.
#[test]
fn forced_visited_downgrades_preserve_behaviors() {
    quiet_injected_panics();
    for case in cheap_cases().into_iter().take(2) {
        let expect = baseline(&case);
        let cfg = case.config();
        let e = explore_engine(
            &case.programs(),
            &cfg,
            &ExploreConfig {
                visited: VisitedMode::Exact,
                fault: Some(FaultPlan {
                    seed: 5,
                    downgrade_every_states: Some(16),
                    ..FaultPlan::default()
                }),
                ..engine_config(&cfg)
            },
        );
        assert_eq!(e.behaviors, expect, "{}", case.name);
        assert!(e.stats.downgrades > 0, "{}: no downgrade forced", case.name);
    }
}

/// Permanent faults quarantine states: the surviving behavior set is a
/// subset of the baseline, every quarantined state is an incident, and
/// the run still terminates cleanly.
#[test]
fn permanent_faults_lose_behaviors_but_never_invent_them() {
    quiet_injected_panics();
    for case in cheap_cases() {
        let expect = baseline(&case);
        let cfg = case.config();
        let e = explore_engine(
            &case.programs(),
            &cfg,
            &ExploreConfig {
                fault: Some(FaultPlan {
                    seed: 23,
                    permanent_panic_per_mille: 100,
                    ..FaultPlan::default()
                }),
                ..engine_config(&cfg)
            },
        );
        assert!(
            e.behaviors.is_subset(&expect),
            "{}: invented behaviors {:?}",
            case.name,
            e.behaviors.difference(&expect).collect::<Vec<_>>()
        );
        assert_eq!(e.stats.stop, StopReason::Completed, "{}", case.name);
        if e.stats.quarantined > 0 {
            assert!(
                e.stats.incident_count > 0,
                "{}: silent quarantine",
                case.name
            );
        }
    }
}

/// The fault schedule is a pure function of (seed, fingerprint), so
/// sequential reruns fault the exact same states. Parallel runs may
/// expand a different (schedule-dependent) state set under reduction,
/// so only per-state determinism — and hence the behavior set — is
/// comparable there, not the aggregate fault count.
#[test]
fn fault_schedules_are_deterministic_across_reruns() {
    quiet_injected_panics();
    let case = &cheap_cases()[0];
    let cfg = case.config();
    let run = |workers: usize| {
        explore_engine(
            &case.programs(),
            &cfg,
            &ExploreConfig {
                workers,
                fault: Some(FaultPlan::transient(77, 300)),
                ..engine_config(&cfg)
            },
        )
    };
    let a = run(1);
    let b = run(1);
    let c = run(4);
    assert_eq!(a.stats.retried, b.stats.retried, "sequential reruns");
    assert!(a.stats.retried > 0, "seed 77 never faulted");
    assert_eq!(a.behaviors, c.behaviors, "1 vs 4 workers");
}
