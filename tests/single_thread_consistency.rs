//! Single-thread model consistency: on a single thread there is no
//! environment, so SC, the promise-free fragment, and full PS^na (with
//! promises and certification) must produce identical behavior sets.
//!
//! This is a strong internal-consistency check of the PS^na machinery:
//! coherence makes a lone thread read only its latest write, promises are
//! forced to be fulfilled by certification, racy branches never fire, and
//! multi-message non-atomic writes are unobservable.

use seqwm_explore::SplitMix64;
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_litmus::gen::{random_program, GenConfig};
use seqwm_promising::machine::explore;
use seqwm_promising::sc::{explore_sc, ScConfig};
use seqwm_promising::thread::PsConfig;

fn check_consistent(p: &Program, what: &str) {
    let sc = explore_sc(std::slice::from_ref(p), &ScConfig::default());
    let ra = explore(std::slice::from_ref(p), &PsConfig::default());
    assert!(!sc.truncated && !ra.truncated, "{what}: truncated");
    assert_eq!(
        sc.behaviors, ra.behaviors,
        "{what}: promise-free PS^na diverges from SC on a single thread:\n{p}"
    );
    assert!(!ra.racy, "{what}: a lone thread can never race:\n{p}");
    let refs = [p];
    let mut cfg = PsConfig::with_promises(&refs);
    cfg.max_states = 100_000;
    let ps = explore(std::slice::from_ref(p), &cfg);
    if !ps.truncated {
        assert_eq!(
            sc.behaviors, ps.behaviors,
            "{what}: promises changed single-thread behaviors:\n{p}"
        );
    }
}

#[test]
fn random_single_threaded_programs() {
    let mut rng = SplitMix64::new(0x517);
    let cfg = GenConfig {
        max_stmts: 5,
        ..GenConfig::default()
    };
    for i in 0..40 {
        let p = random_program(&mut rng, &cfg);
        check_consistent(&p, &format!("random #{i}"));
    }
}

#[test]
fn hand_written_single_threaded_programs() {
    let cases = [
        "store[na](stc_x, 1); a := load[na](stc_x); store[na](stc_x, 2); b := load[na](stc_x); return a * 10 + b;",
        "a := fadd[acqrel](stc_c, 1); b := fadd[rlx](stc_c, 1); return a * 10 + b;",
        "store[rel](stc_f, 1); a := load[acq](stc_f); return a;",
        "c := choose(1, 2); store[na](stc_x, c); d := load[na](stc_x); return d;",
        "fence[sc]; store[rlx](stc_y, 3); fence[acqrel]; a := load[rlx](stc_y); return a;",
        "a := cas[acq](stc_l, 0, 1); b := cas[acq](stc_l, 0, 1); return a * 10 + b;",
        "u := undef; f := freeze(u); if (f == 1) { return 1; } return 0;",
    ];
    for (i, src) in cases.iter().enumerate() {
        let p = parse_program(src).unwrap();
        check_consistent(&p, &format!("hand-written #{i}"));
    }
}

#[test]
fn coherence_forces_latest_own_write() {
    // A lone thread must read its own latest write — never a stale one.
    let p = parse_program(
        "store[rlx](stc_z, 1); store[rlx](stc_z, 2); a := load[rlx](stc_z); return a;",
    )
    .unwrap();
    let ra = explore(std::slice::from_ref(&p), &PsConfig::default());
    let returns: Vec<_> = ra.behaviors.iter().map(|b| b.to_string()).collect();
    assert_eq!(
        returns,
        vec!["(2)"],
        "stale self-read observed: {returns:?}"
    );
}
