//! End-to-end smoke tests for the `seqwm serve` daemon: the real
//! binary, a real TCP socket, and the full wire protocol.
//!
//! Four legs:
//!
//! 1. **Round trip + cache** — a refinement job returns a verdict; the
//!    identical resubmission is answered from the persistent result
//!    cache (verified via `server.stats`), and concurrent submissions
//!    from several client threads all complete.
//! 2. **Budgets** — a fuel-starved refinement job fails with the
//!    structured `BUDGET_EXHAUSTED` error, not a dead connection.
//! 3. **Kill + restart** — an in-flight explore job survives `SIGKILL`
//!    of the daemon: the restarted daemon re-enqueues it from the job
//!    journal and resumes the engine's periodic checkpoint
//!    (`resumed: true` in the final result).
//! 4. **CLI contract** — flag errors exit 2 (usage), bind and probe
//!    failures exit 10 (serve), and `--probe` against a live daemon
//!    exits 0.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use promising_seq::json::Json;

const BIN: &str = env!("CARGO_BIN_EXE_seqwm");

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("seqwm-serve-smoke-{tag}-{}", std::process::id()))
}

/// A daemon child process plus the address it reported on stdout.
struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_daemon(state_dir: &PathBuf, extra: &[&str]) -> Daemon {
    let mut child = Command::new(BIN)
        .arg("serve")
        .arg("--state-dir")
        .arg(state_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("startup line");
    let addr = line
        .trim()
        .strip_prefix("seqwm-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    Daemon {
        child,
        addr,
        stdout,
    }
}

impl Daemon {
    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }
}

/// Minimal blocking JSON-RPC client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            next_id: 1,
        }
    }

    /// Sends one request; returns its response, skipping notifications.
    fn call(&mut self, method: &str, params: Json) -> Json {
        let id = self.next_id;
        self.next_id += 1;
        let req = Json::obj(vec![
            ("jsonrpc", Json::str("2.0")),
            ("id", Json::num(id)),
            ("method", Json::str(method)),
            ("params", params),
        ]);
        let line = req.to_string();
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
        loop {
            let mut reply = String::new();
            self.reader.read_line(&mut reply).expect("read reply");
            assert!(!reply.is_empty(), "daemon closed the connection");
            let doc = Json::parse(reply.trim()).expect("reply parses");
            if doc.get("id").is_some() {
                return doc;
            }
            // Notification (job.event) — callers that want these use
            // job.result to synchronize instead.
        }
    }
}

fn result_of(doc: &Json) -> &Json {
    doc.get("result")
        .unwrap_or_else(|| panic!("expected result, got {doc}"))
}

fn error_code(doc: &Json) -> i64 {
    let e = doc
        .get("error")
        .unwrap_or_else(|| panic!("expected error, got {doc}"));
    match e.get("code").expect("error has code") {
        Json::Num(n) => *n as i64,
        other => panic!("non-numeric code {other}"),
    }
}

fn refine_params(src: &str, tgt: &str) -> Json {
    Json::obj(vec![("src", Json::str(src)), ("tgt", Json::str(tgt))])
}

// ---------------------------------------------------------------------
// Leg 1 + 2: round trip, duplicate → cache hit, budgets, concurrency.
// ---------------------------------------------------------------------

#[test]
fn daemon_round_trip_cache_hit_budget_error_and_concurrent_clients() {
    let dir = tmp_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = spawn_daemon(&dir, &["--workers", "2"]);
    let mut c = daemon.connect();

    // A verdict, computed fresh.
    let params = refine_params(
        "a := load[rlx](x); return a;",
        "a := load[rlx](x); return a;",
    );
    let doc = c.call("refine.check", params.clone());
    let r = result_of(&doc);
    assert_eq!(
        r.get("result")
            .expect("payload")
            .get("verdict")
            .expect("verdict"),
        &Json::str("holds")
    );
    assert_eq!(r.get("cached").expect("cached"), &Json::Bool(false));

    // The byte-identical resubmission must come from the cache.
    let doc = c.call("refine.check", params);
    assert_eq!(
        result_of(&doc).get("cached").expect("cached"),
        &Json::Bool(true)
    );
    let stats = c.call("server.stats", Json::obj(vec![]));
    let cache = result_of(&stats).get("cache").expect("cache stats");
    let hits = cache
        .get("hits")
        .expect("hits")
        .as_u64("hits")
        .expect("u64");
    assert!(hits >= 1, "expected a cache hit, stats: {cache}");

    // Budget enforcement: one unit of fuel cannot simulate anything.
    let doc = c.call(
        "refine.check",
        Json::obj(vec![
            (
                "src",
                Json::str("a := load[rlx](x); b := load[rlx](y); return a + b;"),
            ),
            (
                "tgt",
                Json::str("b := load[rlx](y); a := load[rlx](x); return a + b;"),
            ),
            ("fuel", Json::num(1)),
        ]),
    );
    assert_eq!(error_code(&doc), -32001, "BUDGET_EXHAUSTED: {doc}");
    let data = doc
        .get("error")
        .expect("error")
        .get("data")
        .expect("structured data");
    assert_eq!(data.get("budget").expect("budget"), &Json::str("fuel"));

    // Concurrent clients: distinct jobs from four threads at once.
    let addr = daemon.addr.clone();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr);
                let p = refine_params(&format!("r := {i}; return r;"), &format!("return {i};"));
                let doc = c.call("refine.check", p);
                let r = result_of(&doc);
                assert_eq!(
                    r.get("result")
                        .expect("payload")
                        .get("verdict")
                        .expect("verdict"),
                    &Json::str("holds"),
                    "thread {i}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let doc = c.call("server.shutdown", Json::obj(vec![]));
    assert_eq!(result_of(&doc).get("ok").expect("ok"), &Json::Bool(true));
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown, got {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 3: kill the daemon mid-explore, restart, watch the job resume.
// ---------------------------------------------------------------------

#[test]
fn killed_daemon_resumes_in_flight_explore_job_after_restart() {
    let dir = tmp_dir("resume");
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = spawn_daemon(&dir, &["--workers", "1", "--checkpoint-every-ms", "40"]);
    let mut c = daemon.connect();

    // A 4-thread relaxed ring: far too many unreduced interleavings to
    // finish before the kill, bounded overall by the per-job deadline.
    let programs: Vec<Json> = (0..4)
        .map(|i| {
            Json::str(format!(
                "store[rlx](x{i}, 1); a := load[rlx](x{}); b := load[rlx](x{}); return a + b;",
                (i + 1) % 4,
                (i + 2) % 4
            ))
        })
        .collect();
    let doc = c.call(
        "job.submit",
        Json::obj(vec![
            ("kind", Json::str("explore")),
            ("programs", Json::Arr(programs)),
            ("reduction", Json::Bool(false)),
            ("deadline_ms", Json::num(3_000)),
            ("max_states", Json::num(50_000_000)),
        ]),
    );
    let id = result_of(&doc)
        .get("job")
        .expect("job id")
        .as_u64("job")
        .expect("u64");

    // Wait for the engine's periodic checkpoint to exist, then KILL —
    // no shutdown handshake, exactly like a crash or OOM kill.
    let ckpt = dir.join("jobs").join(format!("job-{id}.ckpt"));
    let t0 = Instant::now();
    while !ckpt.exists() {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "checkpoint never appeared at {}",
            ckpt.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.child.kill().expect("SIGKILL the daemon");
    let _ = daemon.child.wait();

    // Restart on the same state dir: the journal re-enqueues the job,
    // the checkpoint seeds the frontier.
    let mut daemon = spawn_daemon(&dir, &["--workers", "1", "--checkpoint-every-ms", "40"]);
    let mut recovered_line = String::new();
    daemon
        .stdout
        .read_line(&mut recovered_line)
        .expect("recovery line");
    assert!(
        recovered_line.contains("recovered 1 interrupted job"),
        "unexpected recovery line: {recovered_line:?}"
    );

    let mut c = daemon.connect();
    let doc = c.call(
        "job.result",
        Json::obj(vec![("job", Json::num(id)), ("wait", Json::Bool(true))]),
    );
    let r = result_of(&doc);
    assert_eq!(
        r.get("recovered").expect("recovered"),
        &Json::Bool(true),
        "job must be marked as journal-recovered: {r}"
    );
    let payload = r.get("result").expect("payload");
    assert_eq!(
        payload.get("resumed").expect("resumed"),
        &Json::Bool(true),
        "engine must resume the checkpointed frontier: {payload}"
    );
    // The checkpoint is consumed on completion.
    assert!(!ckpt.exists(), "finished job must not leave its checkpoint");

    c.call("server.shutdown", Json::obj(vec![]));
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Leg 4: CLI flag, bind, and probe failures are structured exits.
// ---------------------------------------------------------------------

fn serve_exit(args: &[&str]) -> i32 {
    Command::new(BIN)
        .arg("serve")
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("binary runs")
        .code()
        .expect("exit code")
}

#[test]
fn cli_flag_bind_and_probe_failures_use_the_exit_code_contract() {
    // Usage errors: exit 2, before any socket or directory is touched.
    assert_eq!(serve_exit(&["--port", "not-a-port"]), 2);
    assert_eq!(serve_exit(&["--port", "70000"]), 2, "port out of range");
    assert_eq!(serve_exit(&["--workers", "0"]), 2);
    assert_eq!(serve_exit(&["--workers"]), 2, "missing flag value");
    assert_eq!(serve_exit(&["--no-such-flag"]), 2);
    assert_eq!(serve_exit(&["--max-conns", "0"]), 2, "cap of zero");
    assert_eq!(serve_exit(&["--max-frame-bytes", "16"]), 2, "frame < 256");
    assert_eq!(serve_exit(&["--read-timeout-ms", "0"]), 2, "zero deadline");
    assert_eq!(serve_exit(&["--drain-timeout-ms", "abc"]), 2);
    assert_eq!(serve_exit(&["--probe-attempts", "0"]), 2, "zero attempts");

    // Bind failure: exit 10. Occupy a port with a live daemon first.
    let dir_a = tmp_dir("bind-a");
    let dir_b = tmp_dir("bind-b");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let daemon = spawn_daemon(&dir_a, &[]);
    let port = daemon
        .addr
        .rsplit(':')
        .next()
        .expect("port in addr")
        .to_string();
    let code = serve_exit(&[
        "--port",
        &port,
        "--state-dir",
        dir_b.to_str().expect("utf8 path"),
    ]);
    assert_eq!(code, 10, "bind conflict on port {port}");

    // Probe: exit 0 against the live daemon, 10 against a dead one.
    assert_eq!(serve_exit(&["--probe", &daemon.addr]), 0);
    let mut c = daemon.connect();
    c.call("server.shutdown", Json::obj(vec![]));
    let mut daemon = daemon;
    let _ = daemon.child.wait();
    assert_eq!(
        serve_exit(&["--probe", &daemon.addr, "--timeout-ms", "500"]),
        10,
        "probing a dead daemon"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
