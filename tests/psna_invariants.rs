//! Structural invariants of the PS^na machine, checked along real
//! exploration frontiers:
//!
//! * per-location message intervals are disjoint and sorted;
//! * every thread's promise keys point at existing messages;
//! * thread views never point past the newest message of a location;
//! * `cur ⊑ acq` for every thread view;
//! * non-atomic and `NAMsg` messages always carry the bottom view.

use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_promising::machine::MachineState;
use seqwm_promising::thread::{thread_steps, PsConfig};

fn check_invariants(st: &MachineState, what: &str) {
    // Memory: disjoint sorted intervals; na/NAMsg have ⊥ views.
    for loc in st.mem.locs().collect::<Vec<_>>() {
        let msgs = st.mem.messages(loc);
        for w in msgs.windows(2) {
            assert!(
                w[0].to <= w[1].from,
                "{what}: overlapping/misordered messages at {loc}: {} vs {}",
                w[0],
                w[1]
            );
        }
        for m in msgs {
            if m.is_na_marker() {
                assert!(m.view.is_bottom(), "{what}: NAMsg with non-⊥ view: {m}");
            }
        }
    }
    for (tid, t) in st.threads.iter().enumerate() {
        // Promises point at existing messages.
        for key in t.promises.iter() {
            assert!(
                st.mem.find(key).is_some(),
                "{what}: thread {tid} promise {key:?} not in memory"
            );
        }
        // Views are bounded by the newest message and internally ordered.
        assert!(
            t.view.cur.leq(&t.view.acq),
            "{what}: thread {tid} violates cur ⊑ acq"
        );
        for loc in st.mem.locs().collect::<Vec<_>>() {
            let latest = st.mem.latest(loc).to;
            assert!(
                t.view.ts(loc) <= latest,
                "{what}: thread {tid} view of {loc} past the newest message"
            );
        }
    }
}

fn explore_with_invariants(progs: &[Program], cfg: &PsConfig, what: &str) {
    use std::collections::HashSet;
    let init = MachineState::new(progs);
    let mut visited: HashSet<MachineState> = HashSet::new();
    let mut stack = vec![(init, 0usize)];
    let mut checked = 0usize;
    while let Some((st, depth)) = stack.pop() {
        if depth > 24 || !visited.insert(st.clone()) || visited.len() > 20_000 {
            continue;
        }
        check_invariants(&st, what);
        checked += 1;
        for (tid, t) in st.threads.iter().enumerate() {
            for step in thread_steps(t, &st.mem, &st.sc_view, cfg) {
                if matches!(
                    step.kind,
                    seqwm_promising::thread::StepKind::Failure
                        | seqwm_promising::thread::StepKind::RacyWrite(_)
                ) {
                    continue;
                }
                let mut next = st.clone();
                next.threads[tid] = step.thread;
                next.mem = step.memory;
                next.sc_view = step.sc_view;
                stack.push((next, depth + 1));
            }
        }
    }
    assert!(checked > 50, "{what}: explored only {checked} states");
}

#[test]
fn invariants_on_mp() {
    let progs = vec![
        parse_program("store[na](piv_d, 1); store[rel](piv_f, 1); return 0;").unwrap(),
        parse_program("a := load[acq](piv_f); if (a == 1) { b := load[na](piv_d); } return a;")
            .unwrap(),
    ];
    explore_with_invariants(&progs, &PsConfig::default(), "MP");
}

#[test]
fn invariants_with_promises_and_rmws() {
    let progs = vec![
        parse_program("a := load[rlx](piw_x); store[rlx](piw_y, 1); return a;").unwrap(),
        parse_program("b := fadd[acqrel](piw_x, 1); store[rel](piw_y, 2); return b;").unwrap(),
    ];
    let refs: Vec<&Program> = progs.iter().collect();
    let cfg = PsConfig::with_promises(&refs);
    explore_with_invariants(&progs, &cfg, "promises+RMW");
}

#[test]
fn invariants_with_fences_and_na_writes() {
    let progs = vec![
        parse_program("store[na](pif_d, 1); fence[rel]; store[rlx](pif_f, 1); return 0;").unwrap(),
        parse_program(
            "a := load[rlx](pif_f); fence[acq]; fence[sc]; b := load[na](pif_d); return a;",
        )
        .unwrap(),
    ];
    explore_with_invariants(&progs, &PsConfig::default(), "fences");
}
