//! Property-based tests on the core orders, the parser, the optimizer,
//! and the relation between the two refinement notions (Prop. 3.4).
//!
//! Generators are hand-rolled over the dependency-free [`SplitMix64`]
//! generator (no external property-testing crate), with fixed master
//! seeds so failures are reproducible.

use seqwm_explore::SplitMix64;
use seqwm_lang::parser::parse_program;
use seqwm_lang::{Loc, Value};
use seqwm_seq::behavior::{Behavior, BehaviorEnd};
use seqwm_seq::label::{trace_refines, LocSet, SeqLabel, SyncInfo, Valuation};
use seqwm_seq::refine::{refines_simple, RefineConfig};

/// Scales every sampling loop; `--features fuzzing` multiplies the
/// number of random cases by 8 for longer offline campaigns.
#[cfg(not(feature = "fuzzing"))]
const SCALE: usize = 1;
#[cfg(feature = "fuzzing")]
const SCALE: usize = 8;

// ------------------------------------------------------------ generators --

fn arb_value(rng: &mut SplitMix64) -> Value {
    if rng.below(8) == 0 {
        Value::Undef
    } else {
        Value::Int(rng.below(7) as i64 - 3)
    }
}

fn arb_loc(rng: &mut SplitMix64) -> Loc {
    Loc::new(&format!("pl{}", rng.below(3)))
}

fn arb_locset(rng: &mut SplitMix64) -> LocSet {
    let n = rng.below(3);
    (0..n).map(|_| arb_loc(rng)).collect()
}

fn arb_valuation(rng: &mut SplitMix64) -> Valuation {
    let n = rng.below(3);
    (0..n)
        .map(|_| {
            let l = arb_loc(rng);
            let v = arb_value(rng);
            (l, v)
        })
        .collect()
}

fn arb_sync_info(rng: &mut SplitMix64) -> SyncInfo {
    SyncInfo {
        p_before: arb_locset(rng),
        p_after: arb_locset(rng),
        written: arb_locset(rng),
        vals: arb_valuation(rng),
    }
}

fn arb_label(rng: &mut SplitMix64) -> SeqLabel {
    match rng.below(6) {
        0 => SeqLabel::Choose(arb_value(rng)),
        1 => SeqLabel::ReadRlx(arb_loc(rng), arb_value(rng)),
        2 => SeqLabel::WriteRlx(arb_loc(rng), arb_value(rng)),
        3 => SeqLabel::AcqRead {
            loc: arb_loc(rng),
            val: arb_value(rng),
            info: arb_sync_info(rng),
        },
        4 => SeqLabel::RelWrite {
            loc: arb_loc(rng),
            val: arb_value(rng),
            info: arb_sync_info(rng),
        },
        _ => SeqLabel::Syscall(arb_value(rng)),
    }
}

fn arb_trace(rng: &mut SplitMix64, max: usize) -> Vec<SeqLabel> {
    let n = rng.below(max + 1);
    (0..n).map(|_| arb_label(rng)).collect()
}

fn arb_behavior(rng: &mut SplitMix64) -> Behavior {
    let end = match rng.below(3) {
        0 => BehaviorEnd::Term {
            val: arb_value(rng),
            written: arb_locset(rng),
            mem: arb_valuation(rng),
        },
        1 => BehaviorEnd::Partial {
            written: arb_locset(rng),
        },
        _ => BehaviorEnd::Bottom,
    };
    Behavior {
        trace: arb_trace(rng, 2),
        end,
    }
}

// ---------------------------------------------------------------- values --

#[test]
fn value_order_is_partial_order() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..512 * SCALE {
        let (a, b, c) = (
            arb_value(&mut rng),
            arb_value(&mut rng),
            arb_value(&mut rng),
        );
        assert!(a.refines(a));
        if a.refines(b) && b.refines(a) {
            assert_eq!(a, b);
        }
        if a.refines(b) && b.refines(c) {
            assert!(a.refines(c));
        }
    }
}

#[test]
fn undef_is_the_unique_top() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..256 * SCALE {
        let a = arb_value(&mut rng);
        assert!(a.refines(Value::Undef));
        if Value::Undef.refines(a) {
            assert_eq!(a, Value::Undef);
        }
    }
}

// ---------------------------------------------------------------- labels --

#[test]
fn label_order_is_a_partial_order() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..512 * SCALE {
        let (a, b, c) = (
            arb_label(&mut rng),
            arb_label(&mut rng),
            arb_label(&mut rng),
        );
        assert!(a.refines(&a));
        if a.refines(&b) && b.refines(&c) {
            assert!(a.refines(&c), "transitivity: {a:?} ⊑ {b:?} ⊑ {c:?}");
        }
    }
}

#[test]
fn trace_refinement_requires_equal_length() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..512 * SCALE {
        let t = arb_trace(&mut rng, 3);
        let s = arb_trace(&mut rng, 3);
        if trace_refines(&t, &s) {
            assert_eq!(t.len(), s.len());
        }
    }
}

// ------------------------------------------------------------- behaviors --

#[test]
fn behavior_refinement_is_reflexive_and_transitive() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..512 * SCALE {
        let a = arb_behavior(&mut rng);
        let b = arb_behavior(&mut rng);
        let c = arb_behavior(&mut rng);
        assert!(a.refines(&a));
        if a.refines(&b) && b.refines(&c) {
            assert!(a.refines(&c));
        }
    }
}

#[test]
fn bottom_source_absorbs_extensions() {
    let mut rng = SplitMix64::new(6);
    for _ in 0..256 * SCALE {
        let mut a = arb_behavior(&mut rng);
        let src = Behavior {
            trace: a.trace.clone(),
            end: BehaviorEnd::Bottom,
        };
        a.trace.extend(arb_trace(&mut rng, 2));
        assert!(a.refines(&src), "⟨tr·tr', r⟩ ⊑ ⟨tr, ⊥⟩");
    }
}

// ---------------------------------------------------------------- parser --

#[test]
fn generated_programs_round_trip() {
    let cfg = seqwm_litmus::gen::GenConfig::default();
    let mut master = SplitMix64::new(0x70B1);
    for i in 0..64u64 {
        let mut rng = master.fork(i);
        let p = seqwm_litmus::gen::random_program(&mut rng, &cfg);
        let printed = p.to_string();
        let reparsed = parse_program(&printed).expect("pretty output parses");
        assert_eq!(p, reparsed);
    }
}

// ------------------------------------------------ refinement properties --

#[test]
fn refinement_is_reflexive_on_random_programs() {
    let cfg = seqwm_litmus::gen::GenConfig {
        max_stmts: 3,
        ..seqwm_litmus::gen::GenConfig::default()
    };
    let mut master = SplitMix64::new(0x2EF1);
    for i in 0..24u64 {
        let mut rng = master.fork(i);
        let p = seqwm_litmus::gen::random_program(&mut rng, &cfg);
        let refine_cfg = RefineConfig {
            max_steps: 48,
            ..RefineConfig::default()
        };
        let out = refines_simple(&p, &p, &refine_cfg).expect("checkable");
        assert!(out.holds, "σ ⊑ σ must hold:\n{p}");
    }
}

#[test]
fn optimizer_output_refines_input_prop_3_4() {
    let cfg = seqwm_litmus::gen::GenConfig {
        max_stmts: 4,
        ..seqwm_litmus::gen::GenConfig::default()
    };
    let mut master = SplitMix64::new(0x0314);
    for i in 0..24u64 {
        let mut rng = master.fork(i);
        let p = seqwm_litmus::gen::random_program(&mut rng, &cfg);
        let out = seqwm_opt::pipeline::Pipeline::default().optimize(&p);
        if out.program == p {
            continue;
        }
        let refine_cfg = RefineConfig {
            max_steps: 48,
            ..RefineConfig::default()
        };
        // Prop. 3.4 + soundness: if the simple notion validates the pair,
        // the advanced one must as well.
        let simple = refines_simple(&p, &out.program, &refine_cfg)
            .expect("checkable")
            .holds;
        let advanced = seqwm_seq::advanced::refines_advanced(&p, &out.program, &refine_cfg)
            .expect("checkable")
            .holds;
        assert!(
            advanced,
            "optimizer output must ⊑_w its input:\n{p}\n=>\n{}",
            out.program
        );
        if simple {
            assert!(advanced, "Prop. 3.4: simple ⇒ advanced");
        }
    }
}
