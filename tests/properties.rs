//! Property-based tests (proptest) on the core orders, the parser, the
//! optimizer, and the relation between the two refinement notions
//! (Prop. 3.4).

use proptest::prelude::*;

use seqwm_lang::parser::parse_program;
use seqwm_lang::{Loc, Value};
use seqwm_seq::behavior::{Behavior, BehaviorEnd};
use seqwm_seq::label::{trace_refines, LocSet, SeqLabel, SyncInfo, Valuation};
use seqwm_seq::refine::{refines_simple, RefineConfig};

// ---------------------------------------------------------------- values --

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3i64..4).prop_map(Value::Int),
        Just(Value::Undef),
    ]
}

proptest! {
    #[test]
    fn value_order_is_partial_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        prop_assert!(a.refines(a));
        if a.refines(b) && b.refines(a) {
            prop_assert_eq!(a, b);
        }
        if a.refines(b) && b.refines(c) {
            prop_assert!(a.refines(c));
        }
    }

    #[test]
    fn undef_is_the_unique_top(a in arb_value()) {
        prop_assert!(a.refines(Value::Undef));
        if Value::Undef.refines(a) {
            prop_assert_eq!(a, Value::Undef);
        }
    }
}

// ---------------------------------------------------------------- labels --

fn arb_locset() -> impl Strategy<Value = LocSet> {
    proptest::collection::btree_set((0u8..3).prop_map(|i| Loc::new(&format!("pl{i}"))), 0..3)
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    proptest::collection::btree_map(
        (0u8..3).prop_map(|i| Loc::new(&format!("pl{i}"))),
        arb_value(),
        0..3,
    )
}

fn arb_sync_info() -> impl Strategy<Value = SyncInfo> {
    (arb_locset(), arb_locset(), arb_locset(), arb_valuation()).prop_map(
        |(p_before, p_after, written, vals)| SyncInfo {
            p_before,
            p_after,
            written,
            vals,
        },
    )
}

fn arb_label() -> impl Strategy<Value = SeqLabel> {
    let loc = (0u8..3).prop_map(|i| Loc::new(&format!("pl{i}")));
    prop_oneof![
        arb_value().prop_map(SeqLabel::Choose),
        (loc.clone(), arb_value()).prop_map(|(l, v)| SeqLabel::ReadRlx(l, v)),
        (loc.clone(), arb_value()).prop_map(|(l, v)| SeqLabel::WriteRlx(l, v)),
        (loc.clone(), arb_value(), arb_sync_info())
            .prop_map(|(l, v, i)| SeqLabel::AcqRead { loc: l, val: v, info: i }),
        (loc, arb_value(), arb_sync_info())
            .prop_map(|(l, v, i)| SeqLabel::RelWrite { loc: l, val: v, info: i }),
        arb_value().prop_map(SeqLabel::Syscall),
    ]
}

proptest! {
    #[test]
    fn label_order_is_a_partial_order(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert!(a.refines(&a));
        if a.refines(&b) && b.refines(&a) {
            // Antisymmetry holds up to the F/V components ordering; since
            // both directions require mutual ⊆ / pointwise ⊑, equality
            // follows for defined values.
            prop_assert!(a.refines(&b));
        }
        if a.refines(&b) && b.refines(&c) {
            prop_assert!(a.refines(&c), "transitivity: {a:?} ⊑ {b:?} ⊑ {c:?}");
        }
    }

    #[test]
    fn trace_refinement_requires_equal_length(
        t in proptest::collection::vec(arb_label(), 0..4),
        s in proptest::collection::vec(arb_label(), 0..4),
    ) {
        if trace_refines(&t, &s) {
            prop_assert_eq!(t.len(), s.len());
        }
    }
}

// ------------------------------------------------------------- behaviors --

fn arb_behavior() -> impl Strategy<Value = Behavior> {
    let end = prop_oneof![
        (arb_value(), arb_locset(), arb_valuation()).prop_map(|(val, written, mem)| {
            BehaviorEnd::Term { val, written, mem }
        }),
        arb_locset().prop_map(|written| BehaviorEnd::Partial { written }),
        Just(BehaviorEnd::Bottom),
    ];
    (proptest::collection::vec(arb_label(), 0..3), end)
        .prop_map(|(trace, end)| Behavior { trace, end })
}

proptest! {
    #[test]
    fn behavior_refinement_is_reflexive_and_transitive(
        a in arb_behavior(), b in arb_behavior(), c in arb_behavior()
    ) {
        prop_assert!(a.refines(&a));
        if a.refines(&b) && b.refines(&c) {
            prop_assert!(a.refines(&c));
        }
    }

    #[test]
    fn bottom_source_absorbs_extensions(mut a in arb_behavior(), suffix in proptest::collection::vec(arb_label(), 0..3)) {
        let src = Behavior { trace: a.trace.clone(), end: BehaviorEnd::Bottom };
        a.trace.extend(suffix);
        prop_assert!(a.refines(&src), "⟨tr·tr', r⟩ ⊑ ⟨tr, ⊥⟩");
    }
}

// ---------------------------------------------------------------- parser --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn generated_programs_round_trip(seed in any::<u64>()) {
        use rand::SeedableRng;
        let cfg = seqwm_litmus::gen::GenConfig::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = seqwm_litmus::gen::random_program(&mut rng, &cfg);
        let printed = p.to_string();
        let reparsed = parse_program(&printed).expect("pretty output parses");
        prop_assert_eq!(p, reparsed);
    }
}

// ------------------------------------------------ refinement properties --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn refinement_is_reflexive_on_random_programs(seed in any::<u64>()) {
        use rand::SeedableRng;
        let cfg = seqwm_litmus::gen::GenConfig {
            max_stmts: 3,
            ..seqwm_litmus::gen::GenConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = seqwm_litmus::gen::random_program(&mut rng, &cfg);
        let refine_cfg = RefineConfig { max_steps: 48, ..RefineConfig::default() };
        let out = refines_simple(&p, &p, &refine_cfg).expect("checkable");
        prop_assert!(out.holds, "σ ⊑ σ must hold:\n{}", p);
    }

    #[test]
    fn optimizer_output_refines_input_prop_3_4(seed in any::<u64>()) {
        use rand::SeedableRng;
        let cfg = seqwm_litmus::gen::GenConfig {
            max_stmts: 4,
            ..seqwm_litmus::gen::GenConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = seqwm_litmus::gen::random_program(&mut rng, &cfg);
        let out = seqwm_opt::pipeline::Pipeline::default().optimize(&p);
        if out.program == p {
            return Ok(());
        }
        let refine_cfg = RefineConfig { max_steps: 48, ..RefineConfig::default() };
        // Prop. 3.4 + soundness: if the simple notion validates the pair,
        // the advanced one must as well.
        let simple = refines_simple(&p, &out.program, &refine_cfg).expect("checkable").holds;
        let advanced = seqwm_seq::advanced::refines_advanced(&p, &out.program, &refine_cfg)
            .expect("checkable")
            .holds;
        prop_assert!(advanced, "optimizer output must ⊑_w its input:\n{}\n=>\n{}", p, out.program);
        if simple {
            prop_assert!(advanced, "Prop. 3.4: simple ⇒ advanced");
        }
    }
}
