//! The congruence/compatibility properties of App. A Fig. 7, tested:
//! refinement between snippets is preserved by embedding both sides into
//! the same sequential context (prefixes, suffixes, branches — the `bind`
//! compatibility lemma instantiated at concrete contexts).
//!
//! The paper proves these lemmas in Coq to lift local refinements to whole
//! programs; here we check them extensionally on the corpus.

use seqwm_lang::parser::parse_program;
use seqwm_lang::{Program, Stmt};
use seqwm_litmus::transform::{transform_corpus, Expectation};
use seqwm_seq::refine::{refines_simple, RefineConfig};

/// A sequential context `C[·]` to embed snippets in.
type Context = Box<dyn Fn(&Stmt) -> Stmt>;

/// Sequential contexts `C[·]` to embed snippets in.
fn contexts() -> Vec<(&'static str, Context)> {
    let parse = |s: &str| parse_program(s).unwrap().body;
    vec![
        (
            "prefix",
            Box::new({
                let pre = parse("store[na](x, 1);");
                move |s: &Stmt| Stmt::seq(pre.clone(), s.clone())
            }) as Context,
        ),
        (
            "suffix",
            Box::new({
                let post = parse("q := load[na](x); print(q);");
                move |s: &Stmt| Stmt::seq(s.clone(), post.clone())
            }),
        ),
        (
            "then-branch",
            Box::new({
                let cond = parse_program("g := load[rlx](y);").unwrap().body;
                move |s: &Stmt| {
                    Stmt::seq(
                        cond.clone(),
                        Stmt::If(
                            seqwm_lang::Expr::eq(
                                seqwm_lang::Expr::reg("g"),
                                seqwm_lang::Expr::int(0),
                            ),
                            Box::new(s.clone()),
                            Box::new(Stmt::Skip),
                        ),
                    )
                }
            }),
        ),
    ]
}

#[test]
fn simple_refinement_is_preserved_by_contexts() {
    let cfg = RefineConfig {
        max_steps: 96,
        ..RefineConfig::default()
    };
    let mut checked = 0;
    for case in transform_corpus() {
        if case.expectation != Expectation::Simple {
            continue;
        }
        let src = case.src_program();
        let tgt = case.tgt_program();
        if src.body.has_loop() || tgt.body.has_loop() {
            continue;
        }
        // Context compatibility only makes sense when the context's
        // accesses don't conflict with the snippet's access-mode
        // discipline; our contexts use x non-atomically and y atomically,
        // matching the corpus conventions.
        let mode_ok = |p: &Program| {
            p.na_locs().iter().all(|l| l.name() != "y")
                && p.atomic_locs().iter().all(|l| l.name() != "x")
        };
        if !mode_ok(&src) || !mode_ok(&tgt) {
            continue;
        }
        for (ctx_name, ctx) in contexts() {
            // A snippet ending in `return` discards the suffix context;
            // embedding is still well-defined (dead code), so keep it.
            let csrc = Program::new(ctx(&src.body));
            let ctgt = Program::new(ctx(&tgt.body));
            let out = refines_simple(&csrc, &ctgt, &cfg).expect("checkable");
            assert!(
                out.holds,
                "congruence violated for {} under context `{ctx_name}`: {}",
                case.name,
                out.counterexample
                    .map(|c| c.to_string())
                    .unwrap_or_default()
            );
            checked += 1;
        }
    }
    assert!(checked >= 30, "checked only {checked} embeddings");
}

#[test]
fn reflexivity_and_transitivity_via_pipeline_stages() {
    // ∼ is transitive across the optimizer's stages: each adjacent pair
    // refines, and so does the end-to-end pair (Fig. 7 `reflexivity` +
    // composition in practice).
    let cfg = RefineConfig::default();
    let p = parse_program(
        "store[na](x, 7); c := load[rlx](y); b := load[na](x); store[na](x, 8); return b;",
    )
    .unwrap();
    let out = seqwm_opt::pipeline::Pipeline::default().optimize(&p);
    assert!(out.total_rewrites() > 0);
    let end_to_end = refines_simple(&p, &out.program, &cfg).unwrap();
    assert!(end_to_end.holds, "end-to-end refinement across all stages");
}
