//! The optimizer conformance battery: every pass over the litmus
//! transformation corpus and generated programs, with each rewrite
//! pushed through its translation-validation obligation; the
//! validation memo cache checked for end-to-end determinism (a cached
//! verdict must agree with a fresh one); and — under
//! `--features fault-injection` — one planted known-unsound variant
//! per new pass family, each of which the validator must refute.
//!
//! The battery's contract: a rewrite ships only if its obligation
//! (SEQ behavioral refinement for the paper passes, PS^na differential
//! against declared plus synthesized prober contexts for the atomics
//! and promotion families) was actually discharged.

use seqwm_explore::SplitMix64;
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_litmus::gen::{random_program, GenConfig};
use seqwm_litmus::transform_corpus;
use seqwm_opt::pipeline::{PassKind, PipelineConfig};
use seqwm_opt::validate::{optimize_validated_with, validate_rewrite, ValidationConfig};

fn parse(src: &str) -> Program {
    parse_program(src).expect("battery program parses")
}

fn extended_pipeline() -> PipelineConfig {
    PipelineConfig {
        passes: PassKind::extended(),
        rounds: 1,
    }
}

/// Every pass, run alone over every litmus transformation-corpus source
/// program, produces a rewrite the validator accepts. The corpus spans
/// the paper's §1–§4 shapes plus the appendix patterns, so this is the
/// closest thing to "the optimizer on the paper's own examples".
#[test]
fn every_pass_validates_over_the_litmus_corpus() {
    let vcfg = ValidationConfig::default();
    for case in transform_corpus() {
        let src = case.src_program();
        for pass in PassKind::extended() {
            let (out, _) = pass.run(&src);
            let v = validate_rewrite(pass, &src, &out, &vcfg, None)
                .unwrap_or_else(|e| panic!("{pass} refuted on corpus case {}: {e}", case.name));
            assert_eq!(v.pass, pass);
        }
    }
}

/// The full extended pipeline over generated programs: every stage
/// discharges its obligation, so the validated output refines the input
/// under PS^na (stage-wise — refinement composes transitively), and the
/// final program survives a parse–print round trip.
#[test]
fn validated_pipeline_refines_generated_programs_under_ps_na() {
    let gen = GenConfig::fuzzing();
    let vcfg = ValidationConfig::default();
    let mut master = SplitMix64::new(0x0ba7_7e21);
    for i in 0..8u64 {
        let mut rng = SplitMix64::new(master.next_u64());
        let p = random_program(&mut rng, &gen);
        let v = optimize_validated_with(&p, extended_pipeline(), &vcfg, None)
            .unwrap_or_else(|e| panic!("program {i} refuted:\n{p}\nfailure: {e}"));
        assert_eq!(v.validations.len(), PassKind::extended().len());
        let out = &v.result.program;
        assert_eq!(parse_program(&out.to_string()).expect("reparse"), *out);
    }
}

/// End-to-end cache determinism: the same corpus optimized fresh, cold
/// (empty cache), and warm (pre-filled cache) produces identical
/// programs and identical per-stage verdicts, and the warm run actually
/// answers from the store.
#[test]
fn cached_and_fresh_verdicts_agree_end_to_end() {
    use seqwm_opt::ValidationCache;

    let dir = std::env::temp_dir().join(format!("seqwm-opt-battery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Fig. 4 guarantees rewriting (and therefore cacheable) stages even
    // if the generated tail of the corpus happens to be all no-ops.
    let mut corpus = vec![parse(
        "store[na](x, 42); l := load[acq](y); if (l == 0) { a := load[na](x); } \
         store[rel](y, 1); b := load[na](x); return b;",
    )];
    let gen = GenConfig::fuzzing();
    let mut master = SplitMix64::new(21);
    for _ in 0..3 {
        let mut rng = SplitMix64::new(master.next_u64());
        corpus.push(random_program(&mut rng, &gen));
    }

    let vcfg = ValidationConfig::default();
    let run = |cache: Option<&ValidationCache>| -> Vec<(String, Vec<&'static str>, usize)> {
        corpus
            .iter()
            .map(|p| {
                let v = optimize_validated_with(p, extended_pipeline(), &vcfg, cache)
                    .unwrap_or_else(|e| panic!("battery corpus refuted: {e}"));
                (
                    v.result.program.to_string(),
                    v.validations.iter().map(|s| s.by.name()).collect(),
                    v.cached_stages(),
                )
            })
            .collect()
    };

    let fresh = run(None);
    let cold_cache = ValidationCache::open(&dir, 4096).expect("open cache");
    let cold = run(Some(&cold_cache));
    let cached_after_cold = cold_cache.stats();
    drop(cold_cache);
    let warm_cache = ValidationCache::open(&dir, 4096).expect("reopen cache");
    let warm = run(Some(&warm_cache));

    for ((f, c), w) in fresh.iter().zip(&cold).zip(&warm) {
        assert_eq!(f.0, c.0, "cold cache changed the optimized program");
        assert_eq!(f.0, w.0, "warm cache changed the optimized program");
        assert_eq!(f.1, c.1, "cold cache changed a stage verdict");
        assert_eq!(f.1, w.1, "warm cache changed a stage verdict");
        assert_eq!(f.2, 0, "fresh run cannot be cached");
    }
    assert!(
        cached_after_cold.entries > 0,
        "cold run stored nothing: {cached_after_cold:?}"
    );
    let warm_hits: usize = warm.iter().map(|w| w.2).sum();
    assert!(warm_hits > 0, "warm run answered nothing from the store");
    assert_eq!(warm_hits, warm_cache.stats().hits as usize);

    std::fs::remove_dir_all(&dir).ok();
}

/// The planted-bug leg: each deliberately unsound sibling of a new pass
/// family, on a trigger where the honest pass is sound, must be refuted
/// by the same validator that accepts the honest rewrite.
#[cfg(feature = "fault-injection")]
mod planted {
    use super::*;
    use seqwm_opt::PlantedOptBug;

    /// Per-plant trigger: the program, the declared context threads,
    /// and the honest pass whose obligation judges the rewrite.
    fn trigger(bug: PlantedOptBug) -> (Program, Vec<Program>, PassKind) {
        match bug {
            // The program publishes a non-atomic payload under a
            // release flag; ungated promotion hoists the payload into a
            // register and writes it back *after* the release, so the
            // declared reader can acquire the flag yet observe the
            // stale payload.
            PlantedOptBug::PromoteUngated => (
                parse("store[na](bp_d, 5); store[rel](bp_f, 1); return 0;"),
                vec![parse(
                    "f1 := load[acq](bp_f); if (f1 == 1) { a := load[na](bp_d); print(a); } \
                     return 0;",
                )],
                PassKind::Promote,
            ),
            // A relaxed load plus an acquire fence is the reader side
            // of message passing; deleting the fence makes the (1, 0)
            // print reachable.
            PlantedOptBug::FenceElimAcrossAcquire => (
                parse(
                    "f1 := load[rlx](bf_f); fence[acq]; d1 := load[rlx](bf_d); \
                     print(f1); print(d1); return 0;",
                ),
                vec![parse("store[rlx](bf_d, 1); store[rel](bf_f, 1); return 0;")],
                PassKind::Fence,
            ),
            // Weakening the acquire load breaks the synchronization the
            // same way.
            PlantedOptBug::ModeWeakensAcquire => (
                parse(
                    "f1 := load[acq](bm_f); d1 := load[rlx](bm_d); \
                     print(f1); print(d1); return 0;",
                ),
                vec![parse("store[rlx](bm_d, 1); store[rel](bm_f, 1); return 0;")],
                PassKind::Modes,
            ),
            // Dropping the RMW's write is visible in the closed program
            // already: the second load can no longer see the increment.
            PlantedOptBug::RmwDropsWrite => (
                parse(
                    "r := fadd[rlx](br_x, 1); s := load[rlx](br_x); \
                     print(r); print(s); return 0;",
                ),
                Vec::new(),
                PassKind::Rmw,
            ),
        }
    }

    #[test]
    fn every_planted_variant_is_refuted() {
        for bug in PlantedOptBug::all() {
            let (p, contexts, pass) = trigger(bug);
            let (out, stats) = bug.run(&p);
            assert!(stats.rewrites > 0, "{bug} did not fire on its trigger");
            assert_ne!(out, p, "{bug} trigger produced no rewrite");
            let vcfg = ValidationConfig {
                contexts: contexts.clone(),
                ..ValidationConfig::default()
            };
            let err = validate_rewrite(pass, &p, &out, &vcfg, None);
            assert!(
                err.is_err(),
                "{bug} VALIDATED — the validator is broken:\nsrc:\n{p}\ntgt:\n{out}"
            );
        }
    }

    #[test]
    fn honest_counterparts_validate_on_the_same_triggers() {
        for bug in PlantedOptBug::all() {
            let (p, contexts, pass) = trigger(bug);
            let vcfg = ValidationConfig {
                contexts,
                ..ValidationConfig::default()
            };
            let (out, _) = pass.run(&p);
            validate_rewrite(pass, &p, &out, &vcfg, None)
                .unwrap_or_else(|e| panic!("honest {pass} refuted on {bug}'s trigger: {e}"));
        }
    }
}

/// Satellite of the cache story: record files damaged on disk are
/// quarantined at reopen — never trusted, never a crash — and the
/// post-corruption run still agrees with a fresh one.
#[cfg(feature = "chaos")]
mod cache_chaos {
    use super::*;
    use seqwm_opt::ValidationCache;
    use seqwm_serve::chaos::{corrupt_file, FileChaos};

    #[test]
    fn corrupt_cache_records_quarantine_and_verdicts_still_agree() {
        let dir =
            std::env::temp_dir().join(format!("seqwm-opt-cache-chaos-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let p = parse(
            "store[na](x, 42); l := load[acq](y); if (l == 0) { a := load[na](x); } \
             store[rel](y, 1); b := load[na](x); return b;",
        );
        let vcfg = ValidationConfig::default();
        let fresh = optimize_validated_with(&p, extended_pipeline(), &vcfg, None)
            .expect("fresh run validates");

        let cache = ValidationCache::open(&dir, 4096).expect("open");
        optimize_validated_with(&p, extended_pipeline(), &vcfg, Some(&cache))
            .expect("cold run validates");
        drop(cache);

        // Damage every record file with a rotating chaos mode.
        let modes = [
            FileChaos::Truncate,
            FileChaos::FlipByte,
            FileChaos::Empty,
            FileChaos::Garbage,
        ];
        let mut damaged = 0usize;
        for (i, entry) in std::fs::read_dir(&dir).expect("read cache dir").enumerate() {
            let path = entry.expect("dir entry").path();
            if path.is_file() {
                corrupt_file(&path, modes[i % modes.len()]).expect("corrupt record");
                damaged += 1;
            }
        }
        assert!(damaged > 0, "cold run left no record files to damage");

        let cache = ValidationCache::open(&dir, 4096).expect("reopen survives corruption");
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "corrupt records must not be trusted");
        assert_eq!(stats.quarantined as usize, damaged, "{stats:?}");

        let after = optimize_validated_with(&p, extended_pipeline(), &vcfg, Some(&cache))
            .expect("post-corruption run validates");
        assert_eq!(after.result.program, fresh.result.program);
        assert_eq!(after.cached_stages(), 0, "nothing valid left to hit");
        let by_fresh: Vec<_> = fresh.validations.iter().map(|s| s.by.name()).collect();
        let by_after: Vec<_> = after.validations.iter().map(|s| s.by.name()).collect();
        assert_eq!(by_fresh, by_after);

        std::fs::remove_dir_all(&dir).ok();
    }
}
