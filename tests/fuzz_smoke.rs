//! Smoke tests for the `seqwm-fuzz` differential campaign driver.
//!
//! Three layers are exercised end to end:
//!
//! 1. **Library** — a fixed-seed campaign over the real optimizer and
//!    passes must come back clean (the optimizer is correct; anything
//!    else is a reportable bug), and a campaign against a planted bug
//!    must find it, shrink the reproducer to a handful of statements,
//!    persist it, and replay it.
//! 2. **CLI** — `seqwm fuzz` must exit 8 on a violation and `--replay`
//!    must reproduce a persisted failure from its corpus file alone.
//! 3. **Fault tolerance** (feature `fault-injection`) — a campaign whose
//!    engine explorations are forced to panic must quarantine the
//!    affected cases as incidents and still run to completion, without
//!    ever converting lost behaviors into a violation.
//!
//! Seeds and case counts are fixed so failures here are reproducible
//! byte for byte.

use std::path::PathBuf;
use std::time::Duration;

use promising_seq::fuzz::{
    replay, run_campaign, BuggyPass, Corpus, FuzzConfig, FuzzTarget, OracleKind,
};

/// A unique scratch corpus directory per test.
fn tmp_corpus(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("seqwm-fuzz-smoke-{tag}-{}", std::process::id()))
}

fn base_config(tag: &str) -> FuzzConfig {
    FuzzConfig {
        cases: 100,
        seed: 11,
        corpus_dir: tmp_corpus(tag),
        ..FuzzConfig::default()
    }
}

#[test]
fn healthy_campaign_is_clean() {
    let mut cfg = base_config("healthy");
    // Tighter budgets than the CLI defaults: pathological cases tip
    // into quarantined truncation sooner, which is sound and keeps the
    // test fast. What must NOT appear is a violation. Debug builds pay
    // ~10× per explored state, so they get a proportionally smaller
    // (still deterministic) budget.
    let (fuel, deadline_ms, max_states) = if cfg!(debug_assertions) {
        (2_000, 200, 2_000)
    } else {
        (10_000, 500, 20_000)
    };
    cfg.budgets.refine.max_fuel = Some(fuel);
    cfg.budgets.deadline = Some(Duration::from_millis(deadline_ms));
    cfg.budgets.ps.max_states = max_states;
    let summary = run_campaign(&cfg).expect("campaign runs");
    let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
    assert_eq!(summary.cases_run, 100);
    assert_eq!(summary.violations, 0, "optimizer violation: {summary:?}");
    assert!(summary.clean(), "expected a clean campaign: {summary:?}");
    assert!(
        summary.checks_passed > 0,
        "no case exercised an oracle: {summary:?}"
    );
}

#[test]
fn planted_bug_is_found_shrunk_persisted_and_replayable() {
    let mut cfg = base_config("planted");
    cfg.targets = vec![FuzzTarget::Buggy(BuggyPass::LicmHoistsStore)];
    let summary = run_campaign(&cfg).expect("campaign runs");
    assert!(
        !summary.unique_failures.is_empty(),
        "planted LICM bug not found: {summary:?}"
    );
    for f in &summary.unique_failures {
        assert_eq!(f.oracle, OracleKind::Seq, "caught by the wrong oracle");
        assert!(
            f.shrunk_stmts <= 6,
            "reproducer not minimal: {} statements at {}",
            f.shrunk_stmts,
            f.path.display()
        );
        assert!(
            f.shrunk_stmts <= f.original_stmts,
            "shrinking grew the case"
        );
        // The record round-trips from disk and still reproduces.
        let record = Corpus::load(&f.path).expect("corpus record parses");
        assert_eq!(record.fingerprint(), f.fingerprint);
        let verdict = replay(&record, &cfg.budgets);
        assert!(
            verdict.is_violation(),
            "replay did not reproduce: {verdict:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
}

#[test]
fn cli_exits_8_on_violation_and_replays() {
    let corpus = tmp_corpus("cli");
    let _ = std::fs::remove_dir_all(&corpus);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_seqwm"))
        .args([
            "fuzz",
            "--cases",
            "100",
            "--seed",
            "11",
            "--inject-bug",
            "licm-hoists-store",
            "--corpus",
        ])
        .arg(&corpus)
        .arg("--json")
        .output()
        .expect("seqwm runs");
    assert_eq!(
        out.status.code(),
        Some(8),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"unique_failures\":[{"),
        "no failure in JSON summary: {json}"
    );

    // Replay each persisted failure through the CLI from disk alone.
    let corpus_files: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .expect("corpus dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("fail-") && n.ends_with(".lit"))
        })
        .collect();
    assert!(!corpus_files.is_empty(), "no corpus files persisted");
    for path in corpus_files {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_seqwm"))
            .args(["fuzz", "--replay"])
            .arg(&path)
            .output()
            .expect("seqwm runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(8), "replay exit: {stdout}");
        assert!(stdout.contains("REPRODUCED"), "replay output: {stdout}");
    }
    let _ = std::fs::remove_dir_all(&corpus);
}

/// Permanently-faulting engine expansions must quarantine the affected
/// cases — never fabricate a violation from the lost behaviors — and
/// the campaign must still complete and report the incidents.
#[cfg(feature = "fault-injection")]
#[test]
fn injected_engine_panics_are_quarantined_not_violations() {
    use promising_seq::explore::{FaultPlan, InjectedFault};

    // Silence the backtraces of injected panics (and only those).
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<InjectedFault>() {
            prev(info);
        }
    }));

    let mut cfg = base_config("faulty");
    cfg.cases = 30;
    cfg.targets = vec![FuzzTarget::Pipeline];
    cfg.budgets.fault = Some(FaultPlan {
        seed: 0xFA_017,
        permanent_panic_per_mille: 1000,
        ..FaultPlan::default()
    });
    let summary = run_campaign(&cfg).expect("campaign completes despite faults");
    let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
    assert_eq!(summary.cases_run, 30, "campaign did not complete");
    assert_eq!(summary.violations, 0, "lost behaviors became a violation");
    assert!(
        summary.incident_count > 0,
        "no incident despite always-faulting engine: {summary:?}"
    );
    assert!(
        summary.to_json().contains("engine-fault"),
        "incident cause missing from JSON: {}",
        summary.to_json()
    );
}
