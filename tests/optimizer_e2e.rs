//! Experiments E4/E5/E6: the optimizer end-to-end — Fig. 4 reproduction,
//! per-pass behaviour on the paper's patterns, the ≤3-iteration fixpoint
//! claim, and SEQ-only validation of every stage.

use seqwm_explore::SplitMix64;
use seqwm_lang::parser::parse_program;
use seqwm_litmus::gen::{random_program, GenConfig};
use seqwm_opt::pipeline::{PassKind, Pipeline, PipelineConfig};
use seqwm_opt::validate::{optimize_validated, ValidatedBy};
use seqwm_seq::refine::RefineConfig;

#[test]
fn figure_4_full_reproduction() {
    // The exact program of Fig. 4, including the abstract-state story:
    // x ↦ ◦(42) until the release, ↦ •(42) after, both loads forwarded.
    let p = parse_program(
        "store[na](x, 42);
         l := load[acq](y);
         if (l == 0) { a := load[na](x); }
         store[rel](y, 1);
         b := load[na](x);
         return b;",
    )
    .unwrap();
    let v = optimize_validated(&p, PipelineConfig::default(), &RefineConfig::default())
        .expect("Fig. 4 optimizes and validates");
    let out = v.result.program.to_string();
    assert!(out.contains("a := 42;"), "{out}");
    assert!(out.contains("b := 42;"), "{out}");
    // Validation used SEQ only, via the simple notion.
    for stage in &v.validations {
        assert_ne!(
            (stage.pass, stage.by),
            (PassKind::Slf, ValidatedBy::Advanced),
            "Fig. 4's SLF is justified by the simple notion"
        );
    }
}

#[test]
fn four_pass_patterns_from_section_4() {
    let pipeline = Pipeline::new(PipelineConfig::default());
    // SLF pattern.
    let p =
        parse_program("store[na](x, 1); c := load[rlx](f); b := load[na](x); return b;").unwrap();
    assert!(pipeline
        .optimize(&p)
        .program
        .to_string()
        .contains("b := 1;"));
    // LLF pattern.
    let p = parse_program("a := load[na](x); c := load[rlx](f); b := load[na](x); return a + b;")
        .unwrap();
    assert!(pipeline
        .optimize(&p)
        .program
        .to_string()
        .contains("b := a;"));
    // DSE pattern.
    let p = parse_program("store[na](x, 1); c := load[rlx](f); store[na](x, 2);").unwrap();
    assert!(!pipeline
        .optimize(&p)
        .program
        .to_string()
        .contains("store[na](x, 1);"));
    // LICM pattern (Example 1.3).
    let p = parse_program("while (i < 3) { a := load[na](x); i := i + a; } return a;").unwrap();
    let out = pipeline.optimize(&p).program.to_string();
    assert!(out.contains("licm_"), "{out}");
}

#[test]
fn fixpoint_claim_three_iterations() {
    // §4: "the analysis reaches a fixpoint in at most three iterations
    // when analyzing a loop". Check on a batch of random loopy programs.
    let mut rng = SplitMix64::new(0xF1);
    let cfg = GenConfig::default();
    let pipeline = Pipeline::default();
    for _ in 0..100 {
        let p = random_program(&mut rng, &cfg);
        // Wrap in a loop to force fixpoint computation.
        let looped = parse_program(&format!(
            "while (k < 2) {{ {} k := k + 1; }}",
            strip_returns(&p.to_string())
        ))
        .unwrap();
        let out = pipeline.optimize(&looped);
        for s in &out.stats {
            assert!(
                s.max_fixpoint_iterations <= 3,
                "pass {} took {} iterations on:\n{}",
                s.name,
                s.max_fixpoint_iterations,
                looped
            );
        }
    }
}

fn strip_returns(src: &str) -> String {
    src.lines()
        .filter(|l| !l.trim_start().starts_with("return"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn validated_optimization_of_random_programs() {
    // E6: optimize + validate (SEQ only) a batch of random programs.
    let mut rng = SplitMix64::new(0xE6);
    let gen_cfg = GenConfig {
        max_stmts: 5,
        ..GenConfig::default()
    };
    let refine_cfg = RefineConfig {
        max_steps: 64,
        ..RefineConfig::default()
    };
    let mut validated = 0;
    for _ in 0..50 {
        let p = random_program(&mut rng, &gen_cfg);
        let v = optimize_validated(&p, PipelineConfig::default(), &refine_cfg)
            .unwrap_or_else(|e| panic!("validation failed:\n{e}"));
        if v.result.total_rewrites() > 0 {
            validated += 1;
        }
    }
    assert!(validated >= 8, "only {validated} programs were optimized");
}

#[test]
fn optimizer_preserves_sequential_results() {
    // Cheap sanity: on race-free single-threaded programs the optimized
    // program computes the same return value under SC.
    use seqwm_promising::sc::{explore_sc, ScConfig};
    let mut rng = SplitMix64::new(0x5E0);
    let gen_cfg = GenConfig::default();
    let pipeline = Pipeline::default();
    for _ in 0..60 {
        let p = random_program(&mut rng, &gen_cfg);
        let q = pipeline.optimize(&p).program;
        let bp = explore_sc(std::slice::from_ref(&p), &ScConfig::default());
        let bq = explore_sc(std::slice::from_ref(&q), &ScConfig::default());
        assert_eq!(
            bp.behaviors, bq.behaviors,
            "SC behaviors changed:\n{p}\n=>\n{q}"
        );
    }
}
