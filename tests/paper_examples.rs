//! Experiment E2/E3: the full transformation-example matrix of the paper.
//!
//! Every `{` / `{̸` claim in §1–§4 (Examples 1.1, 2.5–2.12, §3's late-UB
//! and commitment examples, Example 3.5) is checked against *both*
//! refinement checkers, and the verdict must match the paper exactly —
//! including the cases the simple notion refutes but the advanced notion
//! validates.

use seqwm_litmus::transform::{transform_corpus, Expectation};
use seqwm_seq::refine::RefineConfig;

fn run_group(filter: fn(&str) -> bool) {
    let cfg = RefineConfig::default();
    let mut ran = 0;
    for case in transform_corpus() {
        if !filter(case.name) {
            continue;
        }
        ran += 1;
        if let Err(e) = case.check(&cfg) {
            panic!("paper-example matrix violation: {e}");
        }
    }
    assert!(ran > 0, "filter matched no cases");
}

#[test]
fn section_1_motivating_examples() {
    run_group(|n| n.starts_with("slf-basic") || n.starts_with("licm-shape"));
}

#[test]
fn example_2_5_reorderings() {
    run_group(|n| n.starts_with("reorder-"));
}

#[test]
fn example_2_6_eliminations_and_introductions() {
    run_group(|n| n.starts_with("elim-") || n.starts_with("intro-"));
}

#[test]
fn example_2_7_loops() {
    run_group(|n| n.contains("-loop"));
}

#[test]
fn example_2_9_roach_motel() {
    run_group(|n| {
        n.contains("acq-read-then-na")
            || n.contains("na-write-then-rel")
            || n.contains("na-read-then-rel")
            || n.contains("na-write-then-acq")
            || n.contains("na-read-then-acq")
            || n.contains("rel-write-then-na")
    });
}

#[test]
fn example_2_10_store_introduction() {
    run_group(|n| n.starts_with("store-intro-"));
}

#[test]
fn example_2_11_and_2_12_slf_across_atomics() {
    run_group(|n| n.starts_with("slf-across-"));
}

#[test]
fn section_3_late_ub() {
    run_group(|n| {
        n.starts_with("late-ub")
            || n.contains("then-ub")
            || n.starts_with("example-3-1")
            || n.starts_with("ub-depends")
    });
}

#[test]
fn example_3_5_dse_across_atomics() {
    run_group(|n| n.starts_with("dse-across-"));
}

#[test]
fn remark_3_choose_interactions() {
    run_group(|n| n.starts_with("choose-"));
}

#[test]
fn corpus_is_complete_and_named_uniquely() {
    let corpus = transform_corpus();
    assert!(corpus.len() >= 35, "corpus has {} cases", corpus.len());
    let mut names: Vec<_> = corpus.iter().map(|c| c.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), corpus.len(), "duplicate case names");
    // The three-way split is represented.
    assert!(corpus.iter().any(|c| c.expectation == Expectation::Simple));
    assert!(corpus
        .iter()
        .any(|c| c.expectation == Expectation::AdvancedOnly));
    assert!(corpus.iter().any(|c| c.expectation == Expectation::Unsound));
}

#[test]
fn rlx_na_reorderings() {
    run_group(|n| {
        n.starts_with("reorder-na-writes")
            || n.starts_with("reorder-na-reads")
            || n.contains("rlx-read")
            || n.contains("rlx-write")
            || n.starts_with("reorder-rlx")
            || n.starts_with("elim-repeated-rlx")
    });
}

#[test]
fn fence_roach_motel() {
    run_group(|n| n.contains("fence"));
}

#[test]
fn rmw_extensions() {
    run_group(|n| n.contains("rmw"));
}

#[test]
fn syscall_observability() {
    run_group(|n| n.starts_with("print-"));
}
