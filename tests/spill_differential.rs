//! Differential out-of-core suite (feature `fault-injection`).
//!
//! Runs the PS^na engine over real litmus-corpus cases three ways —
//! fully in RAM, spilling visited shards to disk under a starvation
//! budget, and spilling under a deterministic disk-fault plan — and
//! checks the acceptance bar for the spill subsystem:
//!
//! * **Losslessness**: spilling is a pure representation change. The
//!   in-RAM and spilled runs must agree bit-for-bit on state counts,
//!   dedup hits, and behavior sets.
//! * **Write faults are invisible**: torn spill writes are caught by
//!   read-back verification (the shard stays in RAM), so even a run
//!   whose spill files are being shredded produces identical results.
//! * **Read faults only cost re-exploration**: a quarantined segment
//!   makes its fingerprints read as unvisited, so the run may expand
//!   *more* states, but the behavior set — the verdict — never moves,
//!   and every quarantine is visible in the stats.
//!
//! Every fault schedule is a pure function of a fixed seed and the
//! store's monotonic write/read indices, so a failure replays
//! identically on any machine.

#![cfg(feature = "fault-injection")]

use std::collections::BTreeSet;
use std::path::PathBuf;

use seqwm_explore::{ExploreConfig, FaultPlan, SpillSpec, StopReason, VisitedMode};
use seqwm_litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use seqwm_promising::machine::PsBehavior;
use seqwm_promising::search::{engine_config, explore_engine, EngineExploration};

fn cheap_cases() -> Vec<ConcurrentCase> {
    concurrent_corpus()
        .into_iter()
        .filter(|c| !c.promises)
        .take(5)
        .collect()
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqwm-spill-diff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Single-worker engine config: the spill-vs-RAM comparison is only
/// bit-exact when the expansion order is deterministic.
fn base_config(case: &ConcurrentCase) -> ExploreConfig {
    ExploreConfig {
        workers: 1,
        // A small shard count concentrates entries so the coldest
        // shard crosses the spill eligibility floor even on the
        // smaller corpus cases.
        shards: 2,
        visited: VisitedMode::Exact,
        ..engine_config(&case.config())
    }
}

fn run_in_ram(case: &ConcurrentCase) -> EngineExploration {
    let e = explore_engine(&case.programs(), &case.config(), &base_config(case));
    assert!(!e.stats.truncated, "{}: baseline truncated", case.name);
    e
}

fn run_spilled(case: &ConcurrentCase, tag: &str, fault: Option<FaultPlan>) -> EngineExploration {
    let dir = spill_dir(tag);
    let e = explore_engine(
        &case.programs(),
        &case.config(),
        &ExploreConfig {
            // A 1-byte budget forces every eligible shard out to disk:
            // the run exercises the spill path maximally.
            spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
            fault,
            ..base_config(case)
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    e
}

fn behaviors(e: &EngineExploration) -> &BTreeSet<PsBehavior> {
    &e.behaviors
}

/// The core acceptance test: in-RAM, spilled, and spilled-with-torn-
/// writes runs are bit-identical over the litmus corpus.
#[test]
fn spilled_runs_match_in_ram_bit_for_bit() {
    let mut spilled_somewhere = false;
    for case in cheap_cases() {
        let base = run_in_ram(&case);
        let spilled = run_spilled(&case, &format!("clean-{}", case.name), None);
        assert_eq!(
            spilled.stats.states, base.stats.states,
            "{}: spilling changed the state count",
            case.name
        );
        assert_eq!(
            spilled.stats.dedup_hits, base.stats.dedup_hits,
            "{}: spilling changed dedup behavior",
            case.name
        );
        assert_eq!(
            behaviors(&spilled),
            behaviors(&base),
            "{}: spilling changed the behavior set",
            case.name
        );
        assert_eq!(spilled.stats.stop, StopReason::Completed, "{}", case.name);
        assert_eq!(
            spilled.stats.spill_quarantined, 0,
            "{}: clean disk must not quarantine",
            case.name
        );
        assert_eq!(
            spilled.stats.downgrades, 0,
            "{}: spill-first means no lossy rung under a healthy disk",
            case.name
        );
        spilled_somewhere |= spilled.stats.spill_shards > 0;
    }
    assert!(
        spilled_somewhere,
        "the 1-byte budget never spilled a shard anywhere in the corpus"
    );
}

/// Torn spill writes are caught by read-back verification before the
/// segment is trusted, so the results stay bit-identical even while
/// the disk is shredding every other write.
#[test]
fn torn_spill_writes_stay_bit_identical() {
    let mut tore_somewhere = false;
    for (i, case) in cheap_cases().into_iter().enumerate() {
        let base = run_in_ram(&case);
        let faulty = run_spilled(
            &case,
            &format!("torn-{}", case.name),
            Some(FaultPlan {
                seed: 11 + i as u64,
                disk_torn_write_per_mille: 500,
                ..FaultPlan::default()
            }),
        );
        assert_eq!(
            faulty.stats.states, base.stats.states,
            "{}: torn writes changed the state count",
            case.name
        );
        assert_eq!(
            behaviors(&faulty),
            behaviors(&base),
            "{}: torn writes changed the behavior set",
            case.name
        );
        tore_somewhere |= faulty.stats.spill_quarantined > 0;
    }
    assert!(
        tore_somewhere,
        "the torn-write plan never actually tore a segment"
    );
}

/// A failed read quarantines the segment and conservatively treats its
/// fingerprints as unvisited: sound (possible re-exploration, states
/// may only grow) and visible (quarantine counts), never a panic or a
/// changed verdict.
#[test]
fn read_errors_only_cost_re_exploration() {
    let mut quarantined_somewhere = false;
    for (i, case) in cheap_cases().into_iter().enumerate() {
        let base = run_in_ram(&case);
        let faulty = run_spilled(
            &case,
            &format!("read-{}", case.name),
            Some(FaultPlan {
                seed: 7 + i as u64,
                disk_read_error_per_mille: 400,
                ..FaultPlan::default()
            }),
        );
        assert_eq!(
            behaviors(&faulty),
            behaviors(&base),
            "{}: read errors changed the behavior set",
            case.name
        );
        assert!(
            faulty.stats.states >= base.stats.states,
            "{}: losing spilled dedup state cannot shrink the search",
            case.name
        );
        assert_eq!(faulty.stats.stop, StopReason::Completed, "{}", case.name);
        quarantined_somewhere |= faulty.stats.spill_quarantined > 0;
    }
    assert!(
        quarantined_somewhere,
        "the read-error plan never quarantined a segment"
    );
}

/// Simulated ENOSPC disables the store and the engine falls back to
/// the in-RAM lossy ladder — the run still completes with the same
/// behavior set (fp128/fp64 are collision-safe at corpus scale).
#[test]
fn disk_full_degrades_to_the_lossy_ladder() {
    let case = &cheap_cases()[0];
    let base = run_in_ram(case);
    let dir = spill_dir("enospc");
    let faulty = explore_engine(
        &case.programs(),
        &case.config(),
        &ExploreConfig {
            spill: Some(SpillSpec::new(&dir).budget_bytes(1)),
            // The ladder only engages under an in-RAM budget. 52
            // bytes/state sits between the fp64 (48) and fp128 (56)
            // footprints: exact and fp128 overflow, fp64 fits, so the
            // dead store forces the full ladder but still completes.
            max_memory: Some(52 * base.stats.states),
            fault: Some(FaultPlan {
                seed: 3,
                disk_full_after_writes: Some(0),
                ..FaultPlan::default()
            }),
            ..base_config(case)
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        behaviors(&faulty),
        behaviors(&base),
        "ENOSPC changed the behavior set"
    );
    assert_eq!(faulty.stats.spill_shards, 0, "a dead store cannot spill");
    assert!(
        faulty.stats.downgrades > 0,
        "a dead store under memory pressure must take the lossy ladder"
    );
    assert_eq!(faulty.stats.stop, StopReason::Completed);
}
