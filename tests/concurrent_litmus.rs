//! Experiments E7/E10: the concurrent litmus corpus under PS^na.
//!
//! Classic litmus shapes (SB, MP, LB, CoRR, 2+2W), the paper's race
//! semantics (§5: write–write races are UB, write–read races read
//! `undef`), Example 5.1 (promise + racy read), App. B (multi-message
//! non-atomic writes, with its single-message ablation), and App. C (the
//! choose–release reordering counterexample).

use seqwm_litmus::concurrent::{concurrent_corpus, find_concurrent};

#[track_caller]
fn check(name: &str) {
    let case = find_concurrent(name).unwrap_or_else(|| panic!("unknown case {name}"));
    if let Err(e) = case.check() {
        panic!("concurrent litmus violation: {e}");
    }
}

#[test]
fn store_buffering() {
    check("sb-rlx");
}

#[test]
fn store_buffering_with_sc_fences() {
    check("sb-sc-fence");
}

#[test]
fn message_passing() {
    check("mp-rel-acq");
}

#[test]
fn message_passing_relaxed_flag_races() {
    check("mp-rlx-flag-racy");
}

#[test]
fn load_buffering_via_promises() {
    check("lb-rlx-promises");
}

#[test]
fn no_out_of_thin_air() {
    check("lb-data-no-thin-air");
}

#[test]
fn coherence() {
    check("corr-coherence");
}

#[test]
fn two_plus_two_w() {
    check("2+2w-rlx");
}

#[test]
fn write_write_race_is_ub() {
    check("ww-race-ub");
}

#[test]
fn write_read_race_reads_undef() {
    check("wr-race-undef");
}

#[test]
fn example_5_1() {
    check("example-5-1");
}

#[test]
fn appendix_b_multi_message_na_writes() {
    check("appendix-b-multi-message");
}

#[test]
fn appendix_b_single_message_ablation() {
    check("appendix-b-single-message-ablation");
}

#[test]
fn appendix_c_choose_release_source() {
    check("appendix-c-choose-release-source");
}

#[test]
fn appendix_c_choose_release_target() {
    check("appendix-c-choose-release-target");
}

#[test]
fn corpus_names_are_unique() {
    let corpus = concurrent_corpus();
    let mut names: Vec<_> = corpus.iter().map(|c| c.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), corpus.len());
    assert!(corpus.len() >= 15);
}

#[test]
fn message_passing_via_fences() {
    check("mp-fences");
}

#[test]
fn trylock_mutex_is_race_free() {
    check("trylock-cas-mutex");
}

#[test]
fn fetch_add_counter_is_atomic() {
    check("fadd-counter");
}
