//! Structured top-level errors for the `seqwm` command line.
//!
//! Every failure class of the CLI maps to one [`SeqwmError`] variant
//! and a distinct, stable process exit code, so scripts (and the CI
//! harness) can discriminate "you typed the command wrong" from "the
//! input program is ill-formed" from "the engine rejected its
//! configuration" without scraping stderr.

use std::fmt;

use seqwm_explore::ExploreError;

/// Everything that can go wrong in a `seqwm` invocation.
///
/// The mapping to process exit codes is part of the CLI contract:
///
/// | variant          | exit code |
/// |------------------|-----------|
/// | success          | 0         |
/// | [`Usage`]        | 2         |
/// | [`Parse`]        | 3         |
/// | [`Io`]           | 4         |
/// | [`Explore`]      | 5         |
/// | [`Corpus`]       | 6         |
/// | [`Refine`]       | 7         |
/// | [`Fuzz`]         | 8         |
/// | [`Bench`]        | 9         |
/// | [`Serve`]        | 10        |
/// | [`Validate`]     | 11        |
///
/// [`Usage`]: SeqwmError::Usage
/// [`Parse`]: SeqwmError::Parse
/// [`Io`]: SeqwmError::Io
/// [`Explore`]: SeqwmError::Explore
/// [`Corpus`]: SeqwmError::Corpus
/// [`Refine`]: SeqwmError::Refine
/// [`Fuzz`]: SeqwmError::Fuzz
/// [`Bench`]: SeqwmError::Bench
/// [`Serve`]: SeqwmError::Serve
/// [`Validate`]: SeqwmError::Validate
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqwmError {
    /// Bad command line: unknown command, missing operand, or an
    /// unparsable flag value. The message is a usage hint.
    Usage(String),
    /// A program file was read but failed to parse.
    Parse {
        /// The offending file.
        path: String,
        /// The parser's diagnostic (line/column + expectation).
        message: String,
    },
    /// A file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying OS error, rendered.
        message: String,
    },
    /// The exploration engine rejected its configuration (for
    /// example, checkpointing under a non-frontier strategy).
    Explore(ExploreError),
    /// One or more litmus corpus cases failed their paper check.
    Corpus {
        /// How many cases failed.
        failures: usize,
    },
    /// A refinement or validation check could not be completed.
    Refine(String),
    /// A fuzz campaign found (or a replay reproduced) an oracle
    /// violation: a transformation with an unmatched target behavior.
    Fuzz {
        /// How many unique (deduplicated) failures were found.
        failures: usize,
    },
    /// The benchmark regression gate failed: one or more benches
    /// slowed beyond the `--compare` thresholds, or a report could not
    /// be read/understood.
    Bench(String),
    /// The verification daemon could not start (bind failure, state
    /// dir unusable) or a `--probe` round trip failed after its full
    /// retry budget (`--probe-attempts`, exponential backoff with
    /// deterministic jitter between attempts).
    Serve(String),
    /// Translation validation refuted (or could not conclusively
    /// discharge) an optimizer stage obligation: the optimized output
    /// must not be used. Distinct from [`Refine`](SeqwmError::Refine) —
    /// which reports a *check between two given programs* failing to
    /// run — so scripts can tell "the optimizer produced something
    /// unjustified" apart from "the comparison itself broke".
    Validate {
        /// How many programs (batch mode) or stages failed validation.
        failures: usize,
        /// First diagnostic, for the error message.
        detail: String,
    },
}

impl SeqwmError {
    /// The process exit code for this failure class (always nonzero).
    pub fn exit_code(&self) -> u8 {
        match self {
            SeqwmError::Usage(_) => 2,
            SeqwmError::Parse { .. } => 3,
            SeqwmError::Io { .. } => 4,
            SeqwmError::Explore(_) => 5,
            SeqwmError::Corpus { .. } => 6,
            SeqwmError::Refine(_) => 7,
            SeqwmError::Fuzz { .. } => 8,
            SeqwmError::Bench(_) => 9,
            SeqwmError::Serve(_) => 10,
            SeqwmError::Validate { .. } => 11,
        }
    }
}

impl fmt::Display for SeqwmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqwmError::Usage(msg) => write!(f, "{msg}"),
            SeqwmError::Parse { path, message } => write!(f, "{path}: {message}"),
            SeqwmError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            SeqwmError::Explore(e) => write!(f, "exploration: {e}"),
            SeqwmError::Corpus { failures } => write!(f, "{failures} corpus case(s) failed"),
            SeqwmError::Refine(msg) => write!(f, "refinement: {msg}"),
            SeqwmError::Fuzz { failures } => {
                write!(f, "fuzzing found {failures} unique oracle violation(s)")
            }
            SeqwmError::Bench(msg) => write!(f, "bench: {msg}"),
            SeqwmError::Serve(msg) => write!(f, "serve: {msg}"),
            SeqwmError::Validate { failures, detail } => {
                write!(f, "validation refuted {failures} rewrite(s): {detail}")
            }
        }
    }
}

impl std::error::Error for SeqwmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqwmError::Explore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExploreError> for SeqwmError {
    fn from(e: ExploreError) -> Self {
        SeqwmError::Explore(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let all = [
            SeqwmError::Usage(String::new()),
            SeqwmError::Parse {
                path: "p".into(),
                message: "m".into(),
            },
            SeqwmError::Io {
                path: "p".into(),
                message: "m".into(),
            },
            SeqwmError::Explore(ExploreError::InvalidConfig {
                message: "m".into(),
            }),
            SeqwmError::Corpus { failures: 1 },
            SeqwmError::Refine("m".into()),
            SeqwmError::Fuzz { failures: 1 },
            SeqwmError::Bench("m".into()),
            SeqwmError::Serve("m".into()),
            SeqwmError::Validate {
                failures: 1,
                detail: "m".into(),
            },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in &all {
            assert_ne!(e.exit_code(), 0, "{e}");
            assert!(seen.insert(e.exit_code()), "duplicate code for {e}");
        }
    }

    #[test]
    fn explore_errors_convert_and_chain() {
        let e: SeqwmError = ExploreError::InvalidConfig {
            message: "empty checkpoint path".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 5);
        assert!(e.to_string().contains("empty checkpoint path"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
