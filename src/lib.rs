#![warn(missing_docs)]

//! # promising-seq
//!
//! A Rust reproduction of *Sequential Reasoning for Optimizing Compilers
//! under Weak Memory Concurrency* (Cho, Lee, Lee, Hur, Lahav; PLDI 2022).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`lang`] — the `WHILE` toy concurrent language and its LTS semantics.
//! * [`seq`] — the sequential permission machine **SEQ** (§2), simple and
//!   advanced behavioral refinement (§2–3), and the simulation checker
//!   (App. A).
//! * [`promising`] — the promising semantics with non-atomics **PS^na**
//!   (§5), plus SC and release/acquire baseline machines and a
//!   bounded-exhaustive model checker.
//! * [`opt`] — the four optimization passes (SLF/LLF/DSE/LICM, §4 and
//!   App. D) with SEQ-based translation validation.
//! * [`litmus`] — the corpus of litmus tests and program generators used to
//!   reproduce every example of the paper.
//! * [`explore`] — the generic state-space exploration engine (parallel
//!   workers, fingerprint dedup, interleaving reduction, strategies and
//!   budgets) driving the PS^na, SC and SEQ explorers.
//! * [`models`] — pluggable memory-model backends (PS^na, promise-free,
//!   release/acquire, SC-fence, SC) over the exploration engine, the
//!   three local-DRF checkers (LDRF-PF/RA/SC) as bounded runtime
//!   verdicts, and the DRF-gated exploration planner behind
//!   `seqwm explore --model auto`.
//! * [`fuzz`] — crash-resilient differential fuzzing of the optimizer:
//!   campaign driver, SEQ/PS^na/SC oracles, AST-level shrinking, and a
//!   persistent fingerprint-deduplicated failure corpus.
//! * [`bench`] — zero-dependency deterministic benchmarking of the hot
//!   paths above: monotonic-clock harness, median/MAD statistics,
//!   schema-versioned JSON reports, and a baseline regression gate.
//! * [`json`] — the minimal shared JSON value type, parser and emitter
//!   used by the bench reports, the fuzz corpus, and the serve wire
//!   protocol.
//! * [`serve`] — the long-lived verification daemon: newline-delimited
//!   JSON-RPC 2.0 over TCP, a bounded job queue with per-job budgets,
//!   a persistent fingerprint-keyed result cache, and checkpoint-backed
//!   restart recovery.
//!
//! ## Quickstart
//!
//! ```
//! use promising_seq::lang::parser::parse_program;
//! use promising_seq::opt::pipeline::{Pipeline, PipelineConfig};
//!
//! let src = parse_program(
//!     "store[na](x, 42);
//!      l := load[acq](y);
//!      if (l == 0) { a := load[na](x); }
//!      store[rel](y, 1);
//!      b := load[na](x);
//!      return b;",
//! )?;
//! let result = Pipeline::new(PipelineConfig::default()).optimize(&src);
//! // The two loads of x are forwarded to the constant 42 (Fig. 4 of the paper).
//! assert!(result.program.to_string().contains(":= 42"));
//! # Ok::<(), promising_seq::lang::parser::ParseError>(())
//! ```

pub mod error;

pub use error::SeqwmError;
pub use seqwm_bench as bench;
pub use seqwm_explore as explore;
pub use seqwm_fuzz as fuzz;
pub use seqwm_json as json;
pub use seqwm_lang as lang;
pub use seqwm_litmus as litmus;
pub use seqwm_models as models;
pub use seqwm_opt as opt;
pub use seqwm_promising as promising;
pub use seqwm_seq as seq;
pub use seqwm_serve as serve;
