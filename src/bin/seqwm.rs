//! `seqwm` — the command-line front end of the workspace.
//!
//! ```text
//! seqwm parse <file>                  parse + pretty-print a program
//! seqwm optimize [flags] <file>       run the optimizer (§4 + atomics/promotion)
//! seqwm optimize --batch N [flags]    validated batch-corpus optimization
//! seqwm validate <file>               optimize + SEQ-only validation
//! seqwm refine <src> <tgt>            check both refinement notions (§2/§3)
//! seqwm explore [flags] <file>...     PS^na behaviors of a parallel program
//! seqwm sc <file> [<file>...]         SC behaviors (baseline)
//! seqwm drf <file> [<file>...]        race report + model comparison
//! seqwm litmus [name|--all]           run corpus cases
//! seqwm fuzz [flags]                  differential fuzz campaign
//! seqwm fuzz --replay <file>          re-run a persisted failure
//! seqwm bench [flags]                 deterministic benchmark suite
//! seqwm serve [flags]                 long-lived verification daemon
//! ```
//!
//! `explore` accepts `--model <auto|psna|pf|ra|scf|sc>` to pick a
//! memory-model backend (`auto` runs the DRF-gated planner: LDRF-SC →
//! LDRF-RA/PF checker ladder, downgrading the exploration model as far
//! as the race verdicts allow, falling back to full PS^na), plus the
//! engine flags: `--workers N`, `--strategy
//! dfs|bfs|iddfs|random`, `--no-reduction`, `--exact` (exact visited
//! set instead of 64-bit fingerprints), `--max-states N`, `--stats`
//! (print engine statistics), plus the durability/robustness knobs
//! `--checkpoint <file>`, `--resume <file>`,
//! `--checkpoint-every-ms N`, `--deadline-ms N`, `--max-memory-mb N`,
//! and the out-of-core knobs `--spill-dir <dir>` (spill cold
//! visited/frontier shards to disk before any lossy downgrade) and
//! `--spill-budget-mb N` (in-RAM trigger; requires `--spill-dir`).
//!
//! `optimize` accepts `--passes <p1,p2,…|all>` (pass names as printed
//! by the pipeline: `slf`, `llf`, `dse`, `licm`, `constprop`, `modes`,
//! `fence`, `rmw`, `promote`; default is the paper's four, `all` is the
//! extended nine), `--rounds N`, `--validate` (discharge every stage's
//! translation-validation obligation — SEQ refinement for the paper's
//! passes, the PS^na differential check with synthesized prober
//! contexts for the atomics/promotion families), `--ctx <file>`
//! (declare a context thread for the PS^na obligations; repeatable;
//! implies `--validate`), `--cache-dir <dir>` + `--cache-capacity N`
//! (fingerprint-keyed validation memo cache; implies `--validate`),
//! and batch mode `--batch N --seed S [--json]`, which generates a
//! deterministic corpus and reports throughput (programs/sec) plus the
//! cache hit/miss split. A refuted or inconclusive obligation exits 11
//! (`SeqwmError::Validate`): the optimized output must not be used.
//!
//! `fuzz` runs a differential campaign over the optimizer (see the
//! `seqwm-fuzz` crate): `--cases N`, `--seed S`, `--workers N`,
//! `--target <pipeline|slf|llf|dse|licm|constprop|modes|fence|rmw|promote>`
//! (repeatable),
//! `--inject-bug <name>` (planted-bug targets, for exercising the
//! fuzzer), `--corpus <dir>`, `--resume`, `--checkpoint-every N`,
//! `--max-failures N`, `--max-stmts N`, `--ctx-percent P`,
//! `--shrink-evals N`, `--deadline-ms N`, `--max-memory-mb N`,
//! `--seq-fuel N` (global SEQ-checker state budget; 0 = unbounded),
//! `--json`. With the `fault-injection` feature, `--fault-panic-per-mille`,
//! `--fault-permanent-per-mille` and `--fault-seed` drive a deterministic
//! [`FaultPlan`](promising_seq::explore::FaultPlan) through the engine to
//! exercise the fuzzer's own crash resilience. A campaign that finds an
//! oracle violation exits 8; quarantined resource incidents never change
//! the exit code.
//!
//! `bench` runs the `seqwm-bench` suite (exploration, scaling
//! families, refinement, optimizer, fuzz slice) and writes a
//! schema-versioned `BENCH_<name>.json` report: `--quick`,
//! `--filter <substr>`, `--iters N`, `--warmup N`, `--max-workers N`,
//! `--name <name>`, `--out <dir>`, `--json` (print the report to
//! stdout), `--list` (print bench ids without running),
//! `--compare <baseline.json>` (regression gate; exits 9 when a bench
//! slows beyond `--threshold <pct>` *and* `--min-delta-us <µs>`), and
//! `--current <report.json>` (compare a previously written report
//! instead of re-running the suite).
//!
//! `serve` starts the `seqwm-serve` daemon (newline-delimited
//! JSON-RPC 2.0 over TCP): `--host H`, `--port P` (0 = ephemeral; the
//! bound address is printed to stdout), `--workers N` (≥ 1),
//! `--queue-depth N`, `--state-dir <dir>` (job journal, checkpoints,
//! result cache, fuzz corpora; default `.seqwm-serve`),
//! `--cache-capacity N`, `--checkpoint-every-ms N`, plus the
//! hostile-client knobs `--max-conns N` (connection cap; excess
//! connections are rejected at the door with `-32007`),
//! `--max-frame-bytes N` (request-line size cap, `-32005`),
//! `--read-timeout-ms N` (per-frame deadline evicting slow-loris
//! clients with `-32006`) and `--drain-timeout-ms N` (grace period
//! for running jobs under `server.shutdown {"drain": true}`).
//! `--probe <host:port>` (with `--timeout-ms N` and
//! `--probe-attempts N`) instead connects to a running daemon, issues
//! `server.stats`, and exits 0 iff a round trip succeeds within the
//! attempt budget — failed attempts back off exponentially with
//! deterministic jitter, making the probe a robust CI liveness check.
//!
//! Failures exit with a per-class code (see
//! [`promising_seq::SeqwmError::exit_code`]): 2 usage, 3 parse,
//! 4 I/O, 5 engine configuration, 6 corpus, 7 refinement, 8 fuzz
//! violation found, 9 bench regression, 10 serve (bind or probe
//! failure), 11 validation refuted an optimizer rewrite. Engine
//! warnings (corrupt resume file, visited-set downgrade, …) are
//! printed to stderr but never change the exit code: a degraded run
//! that completes is still a successful run.

use std::fs;
use std::process::ExitCode;
use std::time::Duration;

use promising_seq::bench::report::{compare, BenchReport, CompareConfig};
use promising_seq::bench::suite::{list_suite, run_suite, SuiteConfig};
use promising_seq::explore::{CheckpointSpec, ExploreConfig, SpillSpec, Strategy, VisitedMode};
use promising_seq::fuzz::{
    run_batch, run_campaign, BatchConfig, CheckVerdict, Corpus, FuzzConfig, FuzzTarget,
};
use promising_seq::json::Json;
use promising_seq::lang::parser::parse_program;
use promising_seq::lang::Program;
use promising_seq::litmus::concurrent::concurrent_corpus;
use promising_seq::litmus::transform::transform_corpus;
use promising_seq::models::{plan_explore, ModelChoice, ModelKind, ModelOpts};
use promising_seq::opt::pipeline::{PassKind, Pipeline, PipelineConfig};
use promising_seq::opt::validate::{optimize_validated, optimize_validated_with, ValidationConfig};
use promising_seq::opt::ValidationCache;
use promising_seq::promising::drf::drf_check;
use promising_seq::promising::sc::{explore_sc, ScConfig};
use promising_seq::promising::search::{engine_config, explore_engine, try_explore_engine};
use promising_seq::promising::PsConfig;
use promising_seq::seq::advanced::refines_advanced;
use promising_seq::seq::refine::{refines_simple, RefineConfig};
use promising_seq::serve::{ServeConfig, Server};
use promising_seq::SeqwmError;

fn load(path: &str) -> Result<Program, SeqwmError> {
    let src = fs::read_to_string(path).map_err(|e| SeqwmError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    parse_program(&src).map_err(|e| SeqwmError::Parse {
        path: path.to_owned(),
        message: e.to_string(),
    })
}

fn load_all(paths: &[String]) -> Result<Vec<Program>, SeqwmError> {
    if paths.is_empty() {
        return Err(SeqwmError::Usage(
            "expected at least one program file".to_owned(),
        ));
    }
    paths.iter().map(|p| load(p)).collect()
}

fn usage_err(msg: impl Into<String>) -> SeqwmError {
    SeqwmError::Usage(msg.into())
}

/// Engine knobs accepted by `seqwm explore`.
#[derive(Default)]
struct EngineOpts {
    model: Option<String>,
    workers: Option<usize>,
    strategy: Option<Strategy>,
    no_reduction: bool,
    exact: bool,
    max_states: Option<usize>,
    stats: bool,
    checkpoint: Option<String>,
    checkpoint_every_ms: Option<u64>,
    resume: Option<String>,
    deadline_ms: Option<u64>,
    max_memory_mb: Option<usize>,
    spill_dir: Option<String>,
    spill_budget_mb: Option<usize>,
}

impl EngineOpts {
    fn apply(&self, mut ecfg: ExploreConfig) -> ExploreConfig {
        if let Some(w) = self.workers {
            ecfg.workers = w.max(1);
        }
        if let Some(s) = &self.strategy {
            ecfg.strategy = s.clone();
        }
        if self.no_reduction {
            ecfg.reduction = false;
        }
        if self.exact {
            ecfg.visited = VisitedMode::Exact;
        }
        if let Some(n) = self.max_states {
            ecfg.max_states = n;
        }
        if let Some(ms) = self.deadline_ms {
            ecfg.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(mb) = self.max_memory_mb {
            ecfg.max_memory = Some(mb.saturating_mul(1 << 20));
        }
        if let Some(path) = &self.checkpoint {
            let mut spec = CheckpointSpec::new(path);
            if let Some(ms) = self.checkpoint_every_ms {
                spec = spec.every(Duration::from_millis(ms));
            }
            ecfg.checkpoint = Some(spec);
        }
        if let Some(path) = &self.resume {
            ecfg.resume = Some(path.into());
        }
        if let Some(dir) = &self.spill_dir {
            let mut spec = SpillSpec::new(dir);
            if let Some(mb) = self.spill_budget_mb {
                spec = spec.budget_bytes(mb.saturating_mul(1 << 20));
            }
            ecfg.spill = Some(spec);
        }
        ecfg
    }

    /// Whether the user asked for durability explicitly — if so,
    /// misconfigurations are hard errors rather than warnings.
    fn durable(&self) -> bool {
        self.checkpoint.is_some() || self.resume.is_some() || self.spill_dir.is_some()
    }
}

fn parse_engine_flags(args: &[String]) -> Result<(EngineOpts, Vec<String>), SeqwmError> {
    fn value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
        what: &str,
    ) -> Result<&'a String, SeqwmError> {
        it.next()
            .ok_or_else(|| usage_err(format!("{flag} needs {what}")))
    }
    fn number<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, SeqwmError> {
        v.parse()
            .map_err(|_| usage_err(format!("bad {what} `{v}`")))
    }
    let mut opts = EngineOpts::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                let v = value(&mut it, a, "a model name")?;
                opts.model = Some(v.clone());
            }
            "--workers" => {
                let v = value(&mut it, a, "a number")?;
                opts.workers = Some(number(v, "worker count")?);
            }
            "--strategy" => {
                let v = value(&mut it, a, "a name")?;
                opts.strategy = Some(match v.as_str() {
                    "dfs" => Strategy::Dfs,
                    "bfs" => Strategy::Bfs,
                    "iddfs" => Strategy::IterativeDeepening {
                        initial: 8,
                        step: 8,
                    },
                    "random" => Strategy::RandomWalk {
                        walks: 4096,
                        seed: 0xC0FFEE,
                    },
                    other => return Err(usage_err(format!("unknown strategy `{other}`"))),
                });
            }
            "--max-states" => {
                let v = value(&mut it, a, "a number")?;
                opts.max_states = Some(number(v, "state bound")?);
            }
            "--checkpoint" => {
                let v = value(&mut it, a, "a file path")?;
                opts.checkpoint = Some(v.clone());
            }
            "--checkpoint-every-ms" => {
                let v = value(&mut it, a, "a period in ms")?;
                opts.checkpoint_every_ms = Some(number(v, "checkpoint period")?);
            }
            "--resume" => {
                let v = value(&mut it, a, "a file path")?;
                opts.resume = Some(v.clone());
            }
            "--deadline-ms" => {
                let v = value(&mut it, a, "a duration in ms")?;
                opts.deadline_ms = Some(number(v, "deadline")?);
            }
            "--max-memory-mb" => {
                let v = value(&mut it, a, "a size in MiB")?;
                opts.max_memory_mb = Some(number(v, "memory budget")?);
            }
            "--spill-dir" => {
                let v = value(&mut it, a, "a directory path")?;
                opts.spill_dir = Some(v.clone());
            }
            "--spill-budget-mb" => {
                let v = value(&mut it, a, "a size in MiB")?;
                opts.spill_budget_mb = Some(number(v, "spill budget")?);
            }
            "--no-reduction" => opts.no_reduction = true,
            "--exact" => opts.exact = true,
            "--stats" => opts.stats = true,
            other if other.starts_with("--") => {
                return Err(usage_err(format!("unknown flag `{other}`")));
            }
            _ => files.push(a.clone()),
        }
    }
    if opts.spill_budget_mb.is_some() && opts.spill_dir.is_none() {
        return Err(usage_err("--spill-budget-mb requires --spill-dir"));
    }
    Ok((opts, files))
}

/// `seqwm explore --model <name>`: route through the DRF-gated planner
/// (`seqwm-models`) instead of the raw PS^na engine path. Durability
/// and strategy knobs belong to the raw path only.
fn explore_with_model(opts: &EngineOpts, progs: &[Program]) -> Result<(), SeqwmError> {
    let Some(name) = &opts.model else {
        return Err(usage_err("--model missing"));
    };
    if opts.durable() {
        return Err(usage_err(
            "--model is incompatible with --checkpoint/--resume/--spill-dir",
        ));
    }
    if opts.strategy.is_some() || opts.exact {
        return Err(usage_err("--model is incompatible with --strategy/--exact"));
    }
    let choice = ModelChoice::parse(name).ok_or_else(|| {
        let known: Vec<&str> = ModelKind::all().iter().map(|k| k.name()).collect();
        usage_err(format!(
            "unknown model `{name}` (expected auto or one of: {})",
            known.join(", ")
        ))
    })?;
    let mut mopts = ModelOpts::default();
    if let Some(w) = opts.workers {
        mopts.workers = w.max(1);
    }
    if let Some(n) = opts.max_states {
        mopts.ps.max_states = n;
        mopts.sc.max_states = n;
    }
    if opts.no_reduction {
        mopts.reduction = Some(false);
    }
    if let Some(ms) = opts.deadline_ms {
        eprintln!("seqwm: warning: --deadline-ms {ms} is ignored under --model");
    }
    if let Some(mb) = opts.max_memory_mb {
        eprintln!("seqwm: warning: --max-memory-mb {mb} is ignored under --model");
    }
    let r = plan_explore(progs, choice, &mopts);
    println!("model: requested {} → chosen {}", r.requested, r.chosen);
    for c in &r.checks {
        println!("  {c}");
    }
    println!(
        "{}: {} states ({} incl. checker scans{}){}{}",
        r.chosen,
        r.exploration.states,
        r.total_states(),
        if r.reused_scan { ", scan reused" } else { "" },
        if r.exploration.racy { ", racy" } else { "" },
        if r.complete() { "" } else { ", TRUNCATED" },
    );
    for b in &r.exploration.behaviors {
        println!("  {b}");
    }
    Ok(())
}

fn usage() -> SeqwmError {
    usage_err(
        "usage: seqwm <parse|optimize|validate|refine|explore|sc|drf|litmus|fuzz|bench|serve> [args…]\n\
         run `seqwm litmus` with no arguments to list corpus cases",
    )
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("seqwm: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run() -> Result<(), SeqwmError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "parse" => {
            let [path] = rest else {
                return Err(usage_err("usage: seqwm parse <file>"));
            };
            print!("{}", load(path)?);
            Ok(())
        }
        "optimize" => run_optimize(rest),
        "validate" => {
            let [path] = rest else {
                return Err(usage_err("usage: seqwm validate <file>"));
            };
            let p = load(path)?;
            let v = optimize_validated(&p, PipelineConfig::default(), &RefineConfig::default())
                .map_err(|e| SeqwmError::Refine(e.to_string()))?;
            print!("{}", v.result.program);
            for stage in &v.validations {
                eprintln!("// {:?} validated via {:?}", stage.pass, stage.by);
            }
            Ok(())
        }
        "refine" => {
            let [src_path, tgt_path] = rest else {
                return Err(usage_err("usage: seqwm refine <src-file> <tgt-file>"));
            };
            let src = load(src_path)?;
            let tgt = load(tgt_path)?;
            let cfg = RefineConfig::default();
            let simple =
                refines_simple(&src, &tgt, &cfg).map_err(|e| SeqwmError::Refine(e.to_string()))?;
            println!(
                "simple   (Def. 2.4): {}  [{} configs, {} behaviors]",
                if simple.holds { "HOLDS" } else { "fails" },
                simple.configs,
                simple.behaviors
            );
            if let Some(ce) = &simple.counterexample {
                println!("  counterexample: {ce}");
            }
            let adv = refines_advanced(&src, &tgt, &cfg)
                .map_err(|e| SeqwmError::Refine(e.to_string()))?;
            println!(
                "advanced (Def. 3.3): {}  [{} configs]",
                if adv.holds { "HOLDS" } else { "fails" },
                adv.configs
            );
            if let Some(fc) = &adv.failed_config {
                println!("  failed at {fc}");
            }
            Ok(())
        }
        "explore" => {
            let (opts, files) = parse_engine_flags(rest)?;
            let progs = load_all(&files)?;
            if opts.model.is_some() {
                return explore_with_model(&opts, &progs);
            }
            let refs: Vec<&Program> = progs.iter().collect();
            let cfg = PsConfig::with_promises(&refs);
            let ecfg = opts.apply(engine_config(&cfg));
            // With explicit durability flags, misconfigurations (an
            // iddfs/random strategy, an empty path) are hard errors;
            // otherwise the infallible entry point is fine.
            let e = if opts.durable() {
                try_explore_engine(&progs, &cfg, &ecfg)?
            } else {
                explore_engine(&progs, &cfg, &ecfg)
            };
            for w in &e.stats.warnings {
                eprintln!("seqwm: warning: {w}");
            }
            for i in &e.stats.incidents {
                eprintln!("seqwm: incident: {i}");
            }
            let result = e.to_exploration();
            println!(
                "PS^na: {} states{}{}",
                result.states,
                if result.racy { ", racy" } else { "" },
                if result.truncated { ", TRUNCATED" } else { "" }
            );
            for b in &result.behaviors {
                println!("  {b}");
            }
            if opts.stats {
                println!("{}", e.stats);
            }
            Ok(())
        }
        "sc" => {
            let progs = load_all(rest)?;
            let result = explore_sc(&progs, &ScConfig::default());
            println!("SC: {} states", result.states);
            for b in &result.behaviors {
                println!("  {b}");
            }
            Ok(())
        }
        "drf" => {
            let progs = load_all(rest)?;
            let report = drf_check(&progs, true);
            println!("racy:          {}", report.racy);
            if report.truncated {
                println!("truncated:     true (equalities may be inconclusive)");
            }
            println!("PS^na vs RA:   {}", report.ps_vs_ra);
            println!("RA vs SC:      {}", report.ra_vs_sc);
            println!("PS^na behaviors:");
            for b in &report.ps_behaviors {
                println!("  {b}");
            }
            Ok(())
        }
        "litmus" => match rest {
            [] => {
                println!("transformation cases:");
                for c in transform_corpus() {
                    println!("  {:36} {} ({:?})", c.name, c.paper_ref, c.expectation);
                }
                println!("concurrent cases:");
                for c in concurrent_corpus() {
                    println!("  {:36} {}", c.name, c.paper_ref);
                }
                Ok(())
            }
            [flag] if flag == "--all" => {
                let cfg = RefineConfig::default();
                let mut failures = 0;
                for c in transform_corpus() {
                    match c.check(&cfg) {
                        Ok(()) => println!("✓ {}", c.name),
                        Err(e) => {
                            failures += 1;
                            println!("✗ {e}");
                        }
                    }
                }
                for c in concurrent_corpus() {
                    match c.check() {
                        Ok(()) => println!("✓ {}", c.name),
                        Err(e) => {
                            failures += 1;
                            println!("✗ {e}");
                        }
                    }
                }
                if failures == 0 {
                    Ok(())
                } else {
                    Err(SeqwmError::Corpus { failures })
                }
            }
            [name] => {
                if let Some(c) = transform_corpus().into_iter().find(|c| c.name == *name) {
                    c.check(&RefineConfig::default())
                        .map(|()| println!("✓ {} matches the paper", c.name))
                        .map_err(|e| SeqwmError::Refine(e.to_string()))
                } else if let Some(c) = concurrent_corpus().into_iter().find(|c| c.name == *name) {
                    c.check()
                        .map(|()| println!("✓ {} matches the paper", c.name))
                        .map_err(|e| SeqwmError::Refine(e.to_string()))
                } else {
                    Err(usage_err(format!("unknown litmus case `{name}`")))
                }
            }
            _ => Err(usage_err("usage: seqwm litmus [name|--all]")),
        },
        "fuzz" => run_fuzz(rest),
        "bench" => run_bench(rest),
        "serve" => run_serve(rest),
        _ => Err(usage()),
    }
}

/// The `seqwm optimize` subcommand: single-file or batch-corpus
/// optimization, optionally validated with a shared memo cache.
fn run_optimize(args: &[String]) -> Result<(), SeqwmError> {
    fn value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
        what: &str,
    ) -> Result<&'a String, SeqwmError> {
        it.next()
            .ok_or_else(|| usage_err(format!("{flag} needs {what}")))
    }
    fn number<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, SeqwmError> {
        v.parse()
            .map_err(|_| usage_err(format!("bad {what} `{v}`")))
    }
    let mut passes: Option<Vec<PassKind>> = None;
    let mut rounds = 1usize;
    let mut validate = false;
    let mut cache_dir: Option<String> = None;
    let mut cache_capacity = 4096usize;
    let mut ctx_files: Vec<String> = Vec::new();
    let mut batch: Option<usize> = None;
    let mut seed = 0xBA7C_4022u64;
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--passes" => {
                let v = value(&mut it, a, "a comma-separated pass list")?;
                let list = if v == "all" {
                    PassKind::extended()
                } else {
                    v.split(',')
                        .map(|name| {
                            PassKind::parse(name.trim())
                                .ok_or_else(|| usage_err(format!("unknown pass `{name}`")))
                        })
                        .collect::<Result<Vec<_>, _>>()?
                };
                if list.is_empty() {
                    return Err(usage_err("--passes needs at least one pass"));
                }
                passes = Some(list);
            }
            "--rounds" => rounds = number(value(&mut it, a, "a round count")?, "round count")?,
            "--validate" => validate = true,
            "--cache-dir" => cache_dir = Some(value(&mut it, a, "a directory")?.clone()),
            "--cache-capacity" => {
                cache_capacity = number(value(&mut it, a, "an entry count")?, "cache capacity")?
            }
            "--ctx" => ctx_files.push(value(&mut it, a, "a context program file")?.clone()),
            "--batch" => batch = Some(number(value(&mut it, a, "a program count")?, "batch size")?),
            "--seed" => seed = number(value(&mut it, a, "a number")?, "seed")?,
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(usage_err(format!("unknown flag `{flag}`")))
            }
            path => files.push(path.to_owned()),
        }
    }
    // Declared contexts and a memo cache only make sense when the
    // rewrites are actually being validated.
    validate = validate || !ctx_files.is_empty() || cache_dir.is_some();
    let pipeline = PipelineConfig {
        passes: passes.unwrap_or_else(|| PassKind::all().to_vec()),
        rounds: rounds.max(1),
    };
    let vcfg = ValidationConfig {
        contexts: load_all_optional(&ctx_files)?,
        ..ValidationConfig::default()
    };
    let cache = match &cache_dir {
        Some(dir) => {
            Some(
                ValidationCache::open(dir, cache_capacity).map_err(|e| SeqwmError::Io {
                    path: dir.clone(),
                    message: e.to_string(),
                })?,
            )
        }
        None => None,
    };

    if let Some(programs) = batch {
        if !files.is_empty() {
            return Err(usage_err(
                "--batch generates its corpus; drop the file operand",
            ));
        }
        let cfg = BatchConfig {
            programs,
            seed,
            pipeline,
            validate: vcfg,
            cache_dir: cache_dir.map(Into::into),
            cache_capacity,
            ..BatchConfig::default()
        };
        drop(cache); // run_batch opens its own handle on the same dir
        let sum = run_batch(&cfg).map_err(|e| SeqwmError::Io {
            path: cfg
                .cache_dir
                .as_ref()
                .map(|d| d.display().to_string())
                .unwrap_or_default(),
            message: e.to_string(),
        })?;
        if json {
            println!("{}", sum.to_json());
        } else {
            println!(
                "optimize: {} program(s), {} optimized, {} rewrite(s), \
                 {} stage(s) validated ({} cached), {:.1} programs/sec",
                sum.programs,
                sum.optimized,
                sum.rewrites,
                sum.stages_validated,
                sum.stages_cached,
                sum.programs_per_sec()
            );
            if let Some(c) = &sum.cache {
                println!(
                    "cache: {} entries, {} hit(s), {} miss(es), {} evicted, {} quarantined",
                    c.entries, c.hits, c.misses, c.evictions, c.quarantined
                );
            }
            for f in sum.failures.iter().take(8) {
                eprintln!("  ✗ case {} pass {}: {}", f.index, f.pass, f.detail);
            }
        }
        return if sum.failures.is_empty() {
            Ok(())
        } else {
            Err(SeqwmError::Validate {
                failures: sum.failures.len(),
                detail: sum.failures[0].detail.clone(),
            })
        };
    }

    let [path] = &files[..] else {
        return Err(usage_err(
            "usage: seqwm optimize [--passes p1,p2|all] [--rounds N] [--validate] \
             [--cache-dir D] [--cache-capacity N] [--ctx <file>]… \
             (<file> | --batch N [--seed S] [--json])",
        ));
    };
    let p = load(path)?;
    if validate {
        let v = optimize_validated_with(&p, pipeline, &vcfg, cache.as_ref()).map_err(|e| {
            SeqwmError::Validate {
                failures: 1,
                detail: e.to_string(),
            }
        })?;
        print!("{}", v.result.program);
        for stage in &v.validations {
            eprintln!(
                "// {} validated via {:?}{}",
                stage.pass,
                stage.by,
                if stage.cached { " (cached)" } else { "" }
            );
        }
    } else {
        let out = Pipeline::new(pipeline).optimize(&p);
        print!("{}", out.program);
        for s in &out.stats {
            eprintln!("// {s}");
        }
    }
    Ok(())
}

/// Like [`load_all`] but an empty list is fine (no declared contexts).
fn load_all_optional(paths: &[String]) -> Result<Vec<Program>, SeqwmError> {
    paths.iter().map(|p| load(p)).collect()
}

/// The `seqwm fuzz` subcommand: campaign driver or failure replay.
fn run_fuzz(args: &[String]) -> Result<(), SeqwmError> {
    fn value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
        what: &str,
    ) -> Result<&'a String, SeqwmError> {
        it.next()
            .ok_or_else(|| usage_err(format!("{flag} needs {what}")))
    }
    fn number<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, SeqwmError> {
        v.parse()
            .map_err(|_| usage_err(format!("bad {what} `{v}`")))
    }

    let mut cfg = FuzzConfig::default();
    let mut targets: Vec<FuzzTarget> = Vec::new();
    let mut json = false;
    let mut replay_path: Option<String> = None;
    #[cfg(feature = "fault-injection")]
    let mut fault_per_mille: Option<u16> = None;
    #[cfg(feature = "fault-injection")]
    let mut fault_permanent_per_mille: Option<u16> = None;
    #[cfg(feature = "fault-injection")]
    let mut fault_seed: u64 = 0xFA_017;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => cfg.cases = number(value(&mut it, a, "a number")?, "case count")?,
            "--seed" => cfg.seed = number(value(&mut it, a, "a number")?, "seed")?,
            "--workers" => {
                cfg.workers =
                    number::<usize>(value(&mut it, a, "a number")?, "worker count")?.max(1)
            }
            "--max-stmts" => {
                cfg.gen.max_stmts = number(value(&mut it, a, "a number")?, "statement bound")?
            }
            "--ctx-percent" => {
                cfg.ctx_percent = number(value(&mut it, a, "a percentage")?, "context chance")?
            }
            "--shrink-evals" => {
                cfg.shrink_evals = number(value(&mut it, a, "a number")?, "shrink budget")?
            }
            "--max-failures" => {
                cfg.max_failures = number(value(&mut it, a, "a number")?, "failure bound")?
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every =
                    number(value(&mut it, a, "a case count")?, "checkpoint period")?
            }
            "--deadline-ms" => {
                let ms: u64 = number(value(&mut it, a, "a duration in ms")?, "deadline")?;
                cfg.budgets.deadline = Some(Duration::from_millis(ms));
            }
            "--max-memory-mb" => {
                let mb: usize = number(value(&mut it, a, "a size in MiB")?, "memory budget")?;
                cfg.budgets.max_memory = Some(mb.saturating_mul(1 << 20));
            }
            "--seq-fuel" => {
                let fuel: u64 = number(value(&mut it, a, "a state count")?, "SEQ fuel")?;
                cfg.budgets.refine.max_fuel = (fuel > 0).then_some(fuel);
            }
            "--corpus" => cfg.corpus_dir = value(&mut it, a, "a directory")?.into(),
            "--resume" => cfg.resume = true,
            "--target" | "--inject-bug" => {
                let v = value(&mut it, a, "a target name")?;
                let t = FuzzTarget::parse(v)
                    .ok_or_else(|| usage_err(format!("unknown fuzz target `{v}`")))?;
                if a == "--inject-bug" && !matches!(t, FuzzTarget::Buggy(_)) {
                    return Err(usage_err(format!("`{v}` is not a planted bug")));
                }
                targets.push(t);
            }
            "--replay" => replay_path = Some(value(&mut it, a, "a corpus file")?.clone()),
            "--json" => json = true,
            #[cfg(feature = "fault-injection")]
            "--fault-panic-per-mille" => {
                fault_per_mille = Some(number(value(&mut it, a, "a rate")?, "fault rate")?)
            }
            #[cfg(feature = "fault-injection")]
            "--fault-permanent-per-mille" => {
                fault_permanent_per_mille =
                    Some(number(value(&mut it, a, "a rate")?, "fault rate")?)
            }
            #[cfg(feature = "fault-injection")]
            "--fault-seed" => fault_seed = number(value(&mut it, a, "a number")?, "fault seed")?,
            other => return Err(usage_err(format!("unknown flag `{other}`"))),
        }
    }
    #[cfg(feature = "fault-injection")]
    if fault_per_mille.is_some() || fault_permanent_per_mille.is_some() {
        cfg.budgets.fault = Some(promising_seq::explore::FaultPlan {
            seed: fault_seed,
            panic_per_mille: fault_per_mille.unwrap_or(0),
            permanent_panic_per_mille: fault_permanent_per_mille.unwrap_or(0),
            ..promising_seq::explore::FaultPlan::default()
        });
    }

    if let Some(path) = replay_path {
        let record =
            Corpus::load(std::path::Path::new(&path)).map_err(|message| SeqwmError::Parse {
                path: path.clone(),
                message,
            })?;
        println!(
            "replaying {} (target {}, oracle {}, {} stmt(s))",
            path, record.target, record.oracle, record.shrunk_stmts
        );
        return match promising_seq::fuzz::replay(&record, &cfg.budgets) {
            CheckVerdict::Violation { oracle, detail } => {
                println!("REPRODUCED via {oracle}: {detail}");
                Err(SeqwmError::Fuzz { failures: 1 })
            }
            CheckVerdict::Passed { states } => {
                println!("did not reproduce ({states} states explored, all oracles passed)");
                Ok(())
            }
            CheckVerdict::Unoptimized => {
                println!("did not reproduce (target no longer rewrites this program)");
                Ok(())
            }
            CheckVerdict::Incident {
                oracle,
                cause,
                message,
            } => {
                println!("inconclusive: {oracle} incident ({cause}): {message}");
                Ok(())
            }
        };
    }

    if !targets.is_empty() {
        cfg.targets = targets;
    }
    let summary = run_campaign(&cfg).map_err(SeqwmError::Refine)?;
    if json {
        println!("{}", summary.to_json());
    } else {
        println!(
            "fuzz: {} case(s) run (seed {}, {} resumed), {} check(s) passed, {} unoptimized, \
             {} violation(s), {} incident(s) quarantined, {} engine states",
            summary.cases_run,
            summary.seed,
            summary.resumed_from,
            summary.checks_passed,
            summary.unoptimized,
            summary.violations,
            summary.incident_count,
            summary.states
        );
        for f in &summary.unique_failures {
            println!(
                "  ✗ {} via {}: {} → {} stmt(s), {}",
                f.target,
                f.oracle,
                f.original_stmts,
                f.shrunk_stmts,
                f.path.display()
            );
        }
        for i in summary.incidents.iter().take(8) {
            eprintln!(
                "  quarantined case {} ({}, {}): {} — {}",
                i.case_index, i.target, i.oracle, i.cause, i.message
            );
        }
        if summary.incident_count > 8 {
            eprintln!("  … and {} more incident(s)", summary.incident_count - 8);
        }
    }
    if summary.clean() {
        Ok(())
    } else {
        Err(SeqwmError::Fuzz {
            failures: summary.unique_failures.len().max(1),
        })
    }
}

/// The `seqwm bench` subcommand: run the suite, write the report,
/// optionally gate against a baseline.
fn run_bench(args: &[String]) -> Result<(), SeqwmError> {
    fn value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
        what: &str,
    ) -> Result<&'a String, SeqwmError> {
        it.next()
            .ok_or_else(|| usage_err(format!("{flag} needs {what}")))
    }
    fn number<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, SeqwmError> {
        v.parse()
            .map_err(|_| usage_err(format!("bad {what} `{v}`")))
    }
    fn read_report(path: &str) -> Result<BenchReport, SeqwmError> {
        let text = fs::read_to_string(path).map_err(|e| SeqwmError::Io {
            path: path.to_owned(),
            message: e.to_string(),
        })?;
        BenchReport::from_json(&text).map_err(|e| SeqwmError::Bench(format!("{path}: {e}")))
    }

    let mut cfg = SuiteConfig::default();
    let mut name = String::from("run");
    let mut out_dir = String::from(".");
    let mut json = false;
    let mut list = false;
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut cmp_cfg = CompareConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--filter" => cfg.filter = Some(value(&mut it, a, "a substring")?.clone()),
            "--iters" => {
                cfg.iters =
                    number::<usize>(value(&mut it, a, "a number")?, "iteration count")?.max(1)
            }
            "--warmup" => cfg.warmup = number(value(&mut it, a, "a number")?, "warmup count")?,
            "--max-workers" => {
                cfg.max_workers =
                    number::<usize>(value(&mut it, a, "a number")?, "worker count")?.max(1)
            }
            "--name" => name = value(&mut it, a, "a report name")?.clone(),
            "--out" => out_dir = value(&mut it, a, "a directory")?.clone(),
            "--json" => json = true,
            "--list" => list = true,
            "--compare" => baseline_path = Some(value(&mut it, a, "a baseline report")?.clone()),
            "--current" => current_path = Some(value(&mut it, a, "a report file")?.clone()),
            "--threshold" => {
                cmp_cfg.threshold_pct =
                    number(value(&mut it, a, "a percentage")?, "regression threshold")?
            }
            "--min-delta-us" => {
                let us: u64 = number(value(&mut it, a, "a duration in µs")?, "delta floor")?;
                cmp_cfg.min_delta_ns = us.saturating_mul(1_000);
            }
            other => return Err(usage_err(format!("unknown flag `{other}`"))),
        }
    }
    if current_path.is_some() && baseline_path.is_none() {
        return Err(usage_err("--current only makes sense with --compare"));
    }

    if list {
        for id in list_suite(&cfg) {
            println!("{id}");
        }
        return Ok(());
    }

    // Obtain the current report: re-read a prior run, or measure now.
    let current = match &current_path {
        Some(path) => read_report(path)?,
        None => {
            let report = run_suite(&cfg);
            let path = std::path::Path::new(&out_dir).join(format!("BENCH_{name}.json"));
            fs::create_dir_all(&out_dir).map_err(|e| SeqwmError::Io {
                path: out_dir.clone(),
                message: e.to_string(),
            })?;
            fs::write(&path, report.to_json()).map_err(|e| SeqwmError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            if json {
                println!("{}", report.to_json());
            } else {
                for r in &report.results {
                    println!(
                        "{:<40} median {:>10.3}ms  mad {:>8.3}ms  ({} iters{})",
                        r.id(),
                        r.timing.median_ns as f64 / 1e6,
                        r.timing.mad_ns as f64 / 1e6,
                        r.iters,
                        if r.timing.rejected > 0 {
                            format!(", {} outlier(s)", r.timing.rejected)
                        } else {
                            String::new()
                        }
                    );
                }
            }
            eprintln!("bench: report written to {}", path.display());
            report
        }
    };

    let Some(baseline_path) = baseline_path else {
        return Ok(());
    };
    let baseline = read_report(&baseline_path)?;
    let cmp = compare(&baseline, &current, &cmp_cfg);
    for w in &cmp.warnings {
        eprintln!("bench: warning: {w}");
    }
    for id in &cmp.missing {
        eprintln!("bench: warning: baseline bench {id} missing from current report");
    }
    for id in &cmp.added {
        eprintln!("bench: note: new bench {id} has no baseline");
    }
    for d in &cmp.improvements {
        println!("improved  {d}");
    }
    for d in &cmp.regressions {
        println!("REGRESSED {d}");
    }
    if cmp.passed() {
        println!(
            "bench: no regressions vs {baseline_path} (threshold {:.0}%, floor {}µs)",
            cmp_cfg.threshold_pct,
            cmp_cfg.min_delta_ns / 1_000
        );
        Ok(())
    } else {
        Err(SeqwmError::Bench(format!(
            "{} bench(es) regressed beyond {:.0}% vs {baseline_path}",
            cmp.regressions.len(),
            cmp_cfg.threshold_pct
        )))
    }
}

/// The `seqwm serve` subcommand: start the verification daemon, or
/// probe a running one.
fn run_serve(args: &[String]) -> Result<(), SeqwmError> {
    fn value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
        what: &str,
    ) -> Result<&'a String, SeqwmError> {
        it.next()
            .ok_or_else(|| usage_err(format!("{flag} needs {what}")))
    }
    fn number<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, SeqwmError> {
        v.parse()
            .map_err(|_| usage_err(format!("bad {what} `{v}`")))
    }

    let mut cfg = ServeConfig::default();
    let mut probe: Option<String> = None;
    let mut timeout_ms: u64 = 5_000;
    let mut probe_attempts: u32 = 3;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--host" => cfg.host = value(&mut it, a, "an interface")?.clone(),
            "--port" => {
                let v = value(&mut it, a, "a port number")?;
                cfg.port = number(v, "port")?;
            }
            "--workers" => {
                let v = value(&mut it, a, "a number")?;
                let w: usize = number(v, "worker count")?;
                if w == 0 {
                    return Err(usage_err(
                        "--workers must be at least 1 (a daemon with no workers would accept jobs and never run them)",
                    ));
                }
                cfg.workers = w;
            }
            "--queue-depth" => {
                let v = value(&mut it, a, "a number")?;
                cfg.queue_depth = number(v, "queue depth")?;
            }
            "--state-dir" => {
                cfg.state_dir = value(&mut it, a, "a directory")?.into();
            }
            "--cache-capacity" => {
                let v = value(&mut it, a, "a number")?;
                cfg.cache_capacity = number(v, "cache capacity")?;
            }
            "--checkpoint-every-ms" => {
                let v = value(&mut it, a, "a period in ms")?;
                cfg.checkpoint_every = Duration::from_millis(number(v, "checkpoint period")?);
            }
            "--max-conns" => {
                let v = value(&mut it, a, "a number")?;
                let n: usize = number(v, "connection cap")?;
                if n == 0 {
                    return Err(usage_err(
                        "--max-conns must be at least 1 (a daemon that accepts no connections serves no one)",
                    ));
                }
                cfg.max_conns = n;
            }
            "--max-frame-bytes" => {
                let v = value(&mut it, a, "a size in bytes")?;
                let n: usize = number(v, "frame size cap")?;
                if n < 256 {
                    return Err(usage_err(
                        "--max-frame-bytes must be at least 256 (smaller than any valid request line)",
                    ));
                }
                cfg.max_frame_bytes = n;
            }
            "--read-timeout-ms" => {
                let v = value(&mut it, a, "a duration in ms")?;
                let ms: u64 = number(v, "read timeout")?;
                if ms == 0 {
                    return Err(usage_err(
                        "--read-timeout-ms must be at least 1 (a zero deadline evicts every client instantly)",
                    ));
                }
                cfg.read_timeout = Duration::from_millis(ms);
            }
            "--drain-timeout-ms" => {
                let v = value(&mut it, a, "a duration in ms")?;
                cfg.drain_timeout = Duration::from_millis(number(v, "drain timeout")?);
            }
            "--probe" => probe = Some(value(&mut it, a, "host:port")?.clone()),
            "--timeout-ms" => {
                let v = value(&mut it, a, "a duration in ms")?;
                timeout_ms = number(v, "probe timeout")?;
            }
            "--probe-attempts" => {
                let v = value(&mut it, a, "a count")?;
                let n: u32 = number(v, "probe attempts")?;
                if n == 0 {
                    return Err(usage_err("--probe-attempts must be at least 1"));
                }
                probe_attempts = n;
            }
            other => return Err(usage_err(format!("unknown flag `{other}`"))),
        }
    }

    if let Some(addr) = probe {
        return probe_server(&addr, Duration::from_millis(timeout_ms), probe_attempts);
    }

    let server = Server::start(cfg).map_err(SeqwmError::Serve)?;
    // The address line is the startup contract: scripts (and the smoke
    // test) parse it to find an ephemeral port.
    println!("seqwm-serve listening on {}", server.addr());
    let recovered = server.recovered_jobs();
    if recovered > 0 {
        println!("seqwm-serve recovered {recovered} interrupted job(s)");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    Ok(())
}

/// A `server.stats` round trip against a running daemon, retried up
/// to `attempts` times with exponential backoff plus deterministic
/// SplitMix64 jitter — a daemon still binding its socket should cost
/// a CI probe a few hundred milliseconds, not a failed pipeline.
fn probe_server(addr: &str, timeout: Duration, attempts: u32) -> Result<(), SeqwmError> {
    use promising_seq::explore::mix64;

    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            // 50ms, 100ms, 200ms, … capped at ~3.2s, each stretched
            // by up to +50% jitter. The jitter is a pure function of
            // (address, attempt) so probe timing is reproducible.
            let base = 50u64 << (attempt - 1).min(6);
            let addr_fp = addr.bytes().fold(0u64, |h, b| mix64(h ^ u64::from(b)));
            let jitter = mix64(addr_fp ^ u64::from(attempt)) % (base / 2 + 1);
            std::thread::sleep(Duration::from_millis(base + jitter));
        }
        match probe_once(addr, timeout) {
            Ok(()) => return Ok(()),
            Err(SeqwmError::Serve(m)) => last = m,
            Err(e) => return Err(e),
        }
    }
    Err(SeqwmError::Serve(format!(
        "probe failed after {attempts} attempt(s): {last}"
    )))
}

/// One `server.stats` round trip against a running daemon.
fn probe_once(addr: &str, timeout: Duration) -> Result<(), SeqwmError> {
    use std::io::{BufRead, BufReader, Write as _};
    use std::net::{TcpStream, ToSocketAddrs};

    let serve = |m: String| SeqwmError::Serve(m);
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| serve(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| serve(format!("cannot resolve {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| serve(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| serve(format!("cannot configure probe socket: {e}")))?;
    stream
        .write_all(b"{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"server.stats\"}\n")
        .and_then(|()| stream.flush())
        .map_err(|e| serve(format!("probe write to {addr} failed: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| serve(format!("probe read from {addr} failed: {e}")))?;
    let doc =
        Json::parse(line.trim()).map_err(|e| serve(format!("probe reply unparseable: {e}")))?;
    let stats = doc
        .get("result")
        .ok_or_else(|| serve(format!("probe reply carries no result: {}", line.trim())))?;
    let uptime = stats
        .get("uptime_ms")
        .and_then(|u| u.as_u64("uptime_ms").ok())
        .ok_or_else(|| serve("probe reply carries no uptime".to_string()))?;
    let jobs = stats
        .get("jobs")
        .and_then(|j| j.get("total"))
        .and_then(|t| t.as_u64("total").ok())
        .unwrap_or(0);
    println!("seqwm-serve at {addr}: up {uptime}ms, {jobs} job(s) on record");
    Ok(())
}
